"""The batched annotation engine (serving front-end).

:class:`AnnotationEngine` is the single-pass replacement for the legacy
``predict_types`` → ``predict_type_probs`` → relation probe →
``column_embeddings`` cascade: a whole batch of tables is serialized once
(through the shared :class:`~repro.encoding.EncodingPipeline` cache), run
through one padded encoder forward pass per bucket, and types, per-type
score dictionaries, relation predictions, and column embeddings are all
derived from those hidden states.

Batching policy: requests are composed into **exact length buckets**
(:class:`~repro.encoding.BatchPlanner`) — only requests whose forward
passes would use identical padded widths share a batch.  Identical-width
batches carry zero cross-request padding (``EngineStats`` reports the
waste ratio) and, because no sequence is ever padded beyond the width it
would use alone, batched results are **byte-identical** to sequential
ones.  The pre-encoding-layer policy padded sorted chunks jointly, which
perturbed float32 BLAS reductions at the ~1e-7 level; that tolerance is
gone.  Results always come back in request order.

Exactness: any batch composition is bitwise identical to the legacy
multi-pass path (the compatibility wrappers in
:class:`~repro.core.annotator.Doduo` rely on the single-request case;
the serving equivalence tests pin the batched one).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..core.annotator import AnnotatedTable
from ..core.probe import ProbeBudget, ProbePlanner
from ..core.trainer import DoduoTrainer, RawTableAnnotation, default_relation_pairs
from ..datasets.tables import Table
from ..encoding import BatchPlanner, EncodingPipeline
from .colcache import ColumnCache
from .request import AnnotationOptions, AnnotationRequest, AnnotationResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .diskcache import DiskCache

RequestLike = Union[Table, AnnotationRequest]

DEFAULT_DECISION_THRESHOLD = 0.5  # the paper's multi-label cutoff


@dataclass(frozen=True)
class EngineConfig:
    """Engine-level knobs.

    ``batch_size`` caps tables per forward pass.  ``cache_size`` controls
    the serialization cache: ``None`` (default) shares the trainer's
    :class:`~repro.encoding.EncodingPipeline` — serving requests, training
    epochs, and evaluations then reuse each other's serializations — while
    an explicit capacity builds a private pipeline of that size (0 disables
    caching).  ``length_bucketing`` orders the exact width buckets by
    ascending width (``False`` keeps first-seen bucket order; composition
    is exact either way).  ``cache_dir`` turns on the persistent
    result-cache tier (:class:`~repro.serving.diskcache.DiskCache` rooted
    there) so finished annotations survive process restarts.
    ``waste_budget`` opts into the planner's near-width packing
    (:class:`~repro.encoding.BatchPlanner`): adjacent width buckets merge
    while the merged bucket's extra padded tokens stay under the budget —
    fewer forward passes at the cost of the byte-identity contract.  The
    default 0 keeps exact bucketing.

    ``dtype`` is the engine's compute-precision policy: ``"float32"``
    (default — the training dtype, bitwise the legacy serving path) or
    ``"float64"`` (double-precision inference for numeric studies).  The
    dtype is folded into the model fingerprint, so the result cache, the
    column cache, and gateway routing never mix precisions.  ``kernels``
    selects the forward implementation: ``"fast"`` (default) runs the
    proof-gated :class:`~repro.core.inference.InferenceSession` — fused
    QKV, preallocated workspaces, in-place softmax/layernorm, each kernel
    dark until proven bitwise against the reference — while
    ``"reference"`` forces the original Tensor path (float32 only).

    ``column_cache_size`` bounds the column-level content-addressed state
    cache (entries; 0 disables).  It only engages for single-column
    models — table-wise attention makes per-column states
    context-dependent — and ``column_cache_persist`` additionally spills
    entries to the engine's persistent tier (requires ``cache_dir`` or an
    attached result cache) so column states survive restarts.

    ``precision`` is the weight-representation policy, orthogonal to
    ``dtype`` (the activation compute dtype): ``None`` (default — the
    plain float32 weights, byte-identical to a default engine),
    ``"float32"`` (explicit alias of the default, same digest, same
    bytes), ``"float64"``, or ``"int8"`` — per-channel symmetric weight
    quantization served through the accuracy-gated
    :class:`~repro.core.inference.QuantizedInferenceSession`.  Non-default
    precisions fold into the model fingerprint, so int8 never shares a
    cache partition or a route with any float path.  ``weight_arena``
    opts the loading tier (registry / pool) into serving this model from
    a shared mmap-ed arena file (:mod:`repro.nn.arena`); it is
    byte-neutral — a float32 arena stores each parameter's exact bytes —
    and the engine itself ignores it, which is why it lives here: it
    rides the same ``engine_config`` plumbing the registry already
    forwards per model.

    ``probe_mode`` is the relation-probing policy for requests that leave
    ``AnnotationRequest.pairs`` unset: ``"exhaustive"`` (default) probes
    :func:`~repro.core.trainer.default_relation_pairs` — byte-identical to
    the pre-planner engine — while ``"planned"`` routes the request
    through a :class:`~repro.core.probe.ProbePlanner`, which prunes and
    budgets the k² pair cross-product before any encoder work.
    ``probe_budget`` caps the planned pairs per table
    (:class:`~repro.core.probe.ProbeBudget.max_pairs`; ``None`` plans
    without a cap, prefilters only).  Explicit request pairs always bypass
    the planner, and the probe policy folds into the model fingerprint so
    no cache tier or route ever mixes plans.
    """

    batch_size: int = 8
    cache_size: Optional[int] = None
    length_bucketing: bool = True
    default_options: AnnotationOptions = field(default_factory=AnnotationOptions)
    cache_dir: Optional[str] = None
    waste_budget: int = 0
    dtype: str = "float32"
    kernels: str = "fast"
    column_cache_size: int = 1024
    column_cache_persist: bool = False
    probe_mode: str = "exhaustive"
    probe_budget: Optional[int] = None
    precision: Optional[str] = None
    weight_arena: bool = False

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1: {self.batch_size}")
        if self.cache_size is not None and self.cache_size < 0:
            raise ValueError(f"cache_size must be >= 0: {self.cache_size}")
        if self.waste_budget < 0:
            raise ValueError(f"waste_budget must be >= 0: {self.waste_budget}")
        if self.dtype not in ("float32", "float64"):
            raise ValueError(
                f"dtype must be 'float32' or 'float64': {self.dtype!r}"
            )
        if self.kernels not in ("fast", "reference"):
            raise ValueError(
                f"kernels must be 'fast' or 'reference': {self.kernels!r}"
            )
        if self.dtype == "float64" and self.kernels != "fast":
            raise ValueError(
                "dtype='float64' requires kernels='fast' (the reference "
                "Tensor path is float32-only)"
            )
        if self.column_cache_size < 0:
            raise ValueError(
                f"column_cache_size must be >= 0: {self.column_cache_size}"
            )
        if self.probe_mode not in ("exhaustive", "planned"):
            raise ValueError(
                f"probe_mode must be 'exhaustive' or 'planned': "
                f"{self.probe_mode!r}"
            )
        if self.probe_budget is not None:
            if self.probe_budget < 1:
                raise ValueError(
                    f"probe_budget must be >= 1: {self.probe_budget}"
                )
            if self.probe_mode != "planned":
                raise ValueError(
                    "probe_budget requires probe_mode='planned' (exhaustive "
                    "probing has no budget to apply)"
                )
        if self.precision not in (None, "float32", "float64", "int8"):
            raise ValueError(
                "precision must be None, 'float32', 'float64', or 'int8': "
                f"{self.precision!r}"
            )
        if self.precision in ("float64", "int8") and self.kernels != "fast":
            raise ValueError(
                f"precision={self.precision!r} requires kernels='fast' (the "
                "reference Tensor path is float32-only)"
            )
        if (
            self.precision is not None
            and self.dtype != "float32"
            and self.precision != self.dtype
        ):
            raise ValueError(
                f"precision={self.precision!r} and dtype={self.dtype!r} "
                "disagree; set one (precision wins the compute path)"
            )

    @property
    def compute_precision(self) -> str:
        """The dtype handed to the forward path: ``precision`` when set,
        else ``dtype`` — so legacy dtype-only configs keep working and
        ``precision`` can express int8 without a second knob."""
        return self.precision or self.dtype


@dataclass
class EngineStats:
    """Counters for one engine's lifetime.

    ``cache_hits``/``cache_misses`` mirror this engine's share of the
    serialization-cache traffic; ``disk_hits``/``disk_misses`` count
    persistent result-cache lookups (only when a
    :class:`~repro.serving.diskcache.DiskCache` is attached — a disk hit
    skips serialization *and* the forward pass entirely).
    ``real_tokens``/``padded_tokens`` account every encoder pass this
    engine ran: with exact width bucketing ``padding_waste`` stays at the
    intra-table floor (single-column tables pad short columns to their own
    table's widest), with zero cross-request padding on top.
    ``planner_mode`` records the batch-composition policy this engine runs
    (``"exact"``, or ``"packed(waste_budget=N)"`` when
    ``EngineConfig.waste_budget`` opted into near-width packing).

    ``column_hits``/``column_misses`` count column-level state-cache
    lookups (single-column engines only — a hit skips that column's entire
    encoder pass); ``segment_hits``/``segment_misses`` count the
    serialization-tier sibling (a hit skips re-tokenizing one column even
    when the table-level cache misses).

    ``pairs_planned``/``pairs_pruned`` account the probe planner's work on
    ``pairs=None`` requests (``probe_mode="planned"`` only): how many
    relation pairs the plans kept vs discarded from the candidate
    cross-product.  ``pairs_probed`` counts pairs the relation head
    actually encoded in every mode — planned, exhaustive, and explicit
    requests alike (disk-cache hits probe nothing).

    ``quant_fallbacks`` counts int8-engine calls answered by the float32
    fallback after the accuracy gate disproved quantization
    (``precision="int8"`` only; always 0 on float engines) — nonzero
    means this host serves float32 bytes at int8 cache keys, at float32
    speed.
    """

    requests: int = 0
    batches: int = 0
    encoder_passes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    column_hits: int = 0
    column_misses: int = 0
    segment_hits: int = 0
    segment_misses: int = 0
    real_tokens: int = 0
    padded_tokens: int = 0
    pairs_planned: int = 0
    pairs_pruned: int = 0
    pairs_probed: int = 0
    quant_fallbacks: int = 0
    planner_mode: str = "exact"

    @property
    def padding_waste(self) -> float:
        """Fraction of allocated token slots that carried padding."""
        if self.padded_tokens == 0:
            return 0.0
        return (self.padded_tokens - self.real_tokens) / self.padded_tokens

    @property
    def column_hit_rate(self) -> float:
        """Fraction of column-state lookups answered from the cache."""
        total = self.column_hits + self.column_misses
        if total == 0:
            return 0.0
        return self.column_hits / total

    @property
    def probe_prune_rate(self) -> float:
        """Fraction of candidate relation pairs the planner pruned away."""
        total = self.pairs_planned + self.pairs_pruned
        if total == 0:
            return 0.0
        return self.pairs_pruned / total


class AnnotationEngine:
    """Single-pass batched inference over a fine-tuned DODUO model."""

    def __init__(
        self,
        trainer: DoduoTrainer,
        config: Optional[EngineConfig] = None,
        result_cache: Optional["DiskCache"] = None,
    ) -> None:
        # Accept a Doduo annotator as well (duck-typed to avoid a circular
        # import with repro.core.annotator).
        if not isinstance(trainer, DoduoTrainer) and hasattr(trainer, "trainer"):
            trainer = trainer.trainer
        if not isinstance(trainer, DoduoTrainer):
            raise TypeError(
                f"expected a DoduoTrainer or Doduo annotator, got {type(trainer)!r}"
            )
        self.trainer = trainer
        self.config = config or EngineConfig()
        if self.config.cache_size is None:
            # Share the trainer's pipeline: serving, training epochs, and
            # evaluation reuse one serialization cache.
            self.encoding: EncodingPipeline = trainer.encoding
        else:
            self.encoding = EncodingPipeline(
                trainer.serializer,
                single_column=trainer.config.single_column,
                cache_size=self.config.cache_size,
            )
        if result_cache is None and self.config.cache_dir is not None:
            from .diskcache import DiskCache  # deferred: only needed with the tier on

            result_cache = DiskCache(self.config.cache_dir)
        self.result_cache = result_cache
        # Column-level content addressing: sound only for single-column
        # models (table-wise attention makes a column's state depend on its
        # neighbours, so those states are never cached).
        self.column_cache: Optional[ColumnCache] = None
        if trainer.config.single_column and self.config.column_cache_size > 0:
            self.column_cache = ColumnCache(
                self.config.column_cache_size,
                disk=self.result_cache,
                persist=self.config.column_cache_persist,
            )
        self._planner = BatchPlanner(
            batch_size=self.config.batch_size,
            ordered=self.config.length_bucketing,
            waste_budget=self.config.waste_budget,
        )
        # Probe planning: only built in planned mode, so exhaustive engines
        # carry zero planner state and behave byte-identically to before
        # the policy existed.
        self.probe_planner: Optional[ProbePlanner] = None
        if self.config.probe_mode == "planned":
            self.probe_planner = ProbePlanner(
                ProbeBudget(max_pairs=self.config.probe_budget)
            )
        self.stats = EngineStats(planner_mode=self._planner.mode)
        # The proof-cache object we last hydrated from disk; identity-
        # tracked so a rebuilt session (weight swap, invalidation) gets
        # re-hydrated instead of silently starting cold.
        self._hydrated_proofs: Optional[object] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def annotate(
        self,
        table: RequestLike,
        with_embeddings: Optional[bool] = None,
        with_relations: Optional[bool] = None,
        top_k: Optional[int] = None,
        score_threshold: Optional[float] = None,
        pairs: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> AnnotationResult:
        """Annotate one table (a single-table batch).

        Single-table batches reproduce the legacy multi-pass outputs
        bitwise, so this is the strict-compatibility entry point; use
        :meth:`annotate_batch`/:meth:`annotate_stream` for throughput.
        """
        request = self._as_request(table)
        overrides = {}
        if with_embeddings is not None:
            overrides["with_embeddings"] = with_embeddings
        if with_relations is not None:
            overrides["with_relations"] = with_relations
        if top_k is not None:
            overrides["top_k"] = top_k
        if score_threshold is not None:
            overrides["score_threshold"] = score_threshold
        if overrides or pairs is not None:
            # Never mutate a caller-supplied request: overrides apply to a copy.
            request = AnnotationRequest(
                table=request.table,
                options=replace(request.options, **overrides),
                pairs=(
                    tuple((int(i), int(j)) for i, j in pairs)
                    if pairs is not None
                    else request.pairs
                ),
                model=request.model,
            )
        return self.annotate_batch([request])[0]

    def annotate_batch(
        self,
        items: Sequence[RequestLike],
        options: Optional[AnnotationOptions] = None,
    ) -> List[AnnotationResult]:
        """Annotate many tables, one forward pass per exact width bucket.

        ``options`` applies to plain :class:`Table` items; explicit
        :class:`AnnotationRequest` items keep their own options.  Results are
        returned in input order regardless of bucket composition, and each
        one is byte-identical to what :meth:`annotate` would return alone.

        With a persistent result cache attached (``EngineConfig.cache_dir``
        or the ``result_cache`` constructor argument), each request is first
        looked up by (table content, model fingerprint, options); hits are
        rebuilt byte-identically from disk without serializing or encoding
        anything, and only the misses proceed to the forward pass — whose
        results are then persisted for the next process.
        """
        requests = [self._as_request(item, options) for item in items]
        if not requests:
            return []
        if not self.trainer.config.multi_label:
            for request in requests:
                if request.options.score_threshold is not None:
                    raise ValueError(
                        "score_threshold applies to multi-label models only; "
                        "this model is single-label (argmax decision)"
                    )
        results: List[Optional[AnnotationResult]] = [None] * len(requests)
        pending = list(range(len(requests)))
        cache_keys: List[Optional[str]] = [None] * len(requests)
        # Captured once: the registry may detach the tier concurrently
        # (eviction while a worker drains) — this call then finishes its
        # lookups against the handle it started with, and the put block
        # below re-reads the attribute so detached engines stop persisting.
        result_cache = self.result_cache
        if result_cache is not None:
            from .diskcache import decode_annotation, result_cache_key

            pending = []
            fingerprint = self.model_fingerprint
            for i, request in enumerate(requests):
                cache_keys[i] = result_cache_key(fingerprint, request)
                payload = result_cache.get(cache_keys[i])
                if payload is None:
                    self.stats.disk_misses += 1
                    pending.append(i)
                else:
                    self.stats.disk_hits += 1
                    results[i] = AnnotationResult(
                        request=request,
                        annotated=decode_annotation(request, payload),
                        from_disk=True,
                    )
        encoded: Dict[int, object] = {}
        cached_flags: Dict[int, bool] = {}
        # The pipeline may be shared (trainer, other engines), so engine
        # stats accumulate only this call's slice of the cache traffic.
        hits_before = self.encoding.cache_hits
        misses_before = self.encoding.cache_misses
        seg_hits_before = self.encoding.segment_hits
        seg_misses_before = self.encoding.segment_misses
        for i in pending:
            encoded[i], cached_flags[i] = self.encoding.encode_cached(
                requests[i].table
            )
        self.stats.cache_hits += self.encoding.cache_hits - hits_before
        self.stats.cache_misses += self.encoding.cache_misses - misses_before
        self.stats.segment_hits += self.encoding.segment_hits - seg_hits_before
        self.stats.segment_misses += self.encoding.segment_misses - seg_misses_before
        # Probe planning: pairs=None requests in planned mode get their
        # pair set decided here, ONCE, so the batching signature and the
        # probes the trainer runs always agree.  Explicit pairs and
        # relation-less requests bypass the planner entirely.
        planned_pairs: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        if self.probe_planner is not None:
            for i in pending:
                request = requests[i]
                if (
                    request.pairs is None
                    and request.options.with_relations
                    and self.trainer.model.relation_head is not None
                ):
                    plan = self.probe_planner.plan(request.table)
                    planned_pairs[i] = plan.pairs
                    self.stats.pairs_planned += plan.planned
                    self.stats.pairs_pruned += plan.pruned
        # Exact bucket plan: only requests dictating identical padded widths
        # share a forward batch (the byte-identity contract) — unless
        # ``waste_budget`` opted into near-width packing.
        signatures = [
            self._signature(requests[i], encoded[i], planned_pairs.get(i))
            for i in pending
        ]
        if pending:
            self._hydrate_proofs()
        for bucket in self._planner.plan(signatures):
            chunk = [pending[k] for k in bucket]
            self._run_chunk(
                chunk, requests, encoded, cached_flags, results, planned_pairs
            )
        if pending:
            self._persist_proofs()
        # Fresh read (NOT the captured handle): once the registry detaches
        # the tier, this engine stops persisting immediately.
        result_cache = self.result_cache
        if result_cache is not None:
            from .diskcache import encode_annotation

            for i in pending:
                if results[i] is not None and cache_keys[i] is not None:
                    result_cache.put(cache_keys[i], encode_annotation(results[i]))
        self.stats.requests += len(requests)
        return [result for result in results if result is not None]

    def annotate_stream(
        self,
        tables: Iterable[RequestLike],
        options: Optional[AnnotationOptions] = None,
        batch_size: Optional[int] = None,
    ) -> Iterator[AnnotationResult]:
        """Lazily annotate an unbounded iterable of tables.

        Pulls up to ``batch_size`` tables at a time (engine default when
        omitted), annotates each chunk with one padded pass, and yields
        results in input order — memory stays bounded by the chunk size, so
        this works over generators and files that never fit in RAM.
        """
        size = self.config.batch_size if batch_size is None else batch_size
        if size < 1:
            raise ValueError(f"batch_size must be >= 1: {size}")
        pending: List[RequestLike] = []
        for item in tables:
            pending.append(item)
            if len(pending) >= size:
                yield from self.annotate_batch(pending, options)
                pending = []
        if pending:
            yield from self.annotate_batch(pending, options)

    def clear_cache(self) -> None:
        """Drop the serialization cache (the disk tier is untouched).

        With the default shared pipeline this clears the trainer's cache
        too — the cache is one object by design.
        """
        self.encoding.clear_cache()
        self.stats.cache_hits = 0
        self.stats.cache_misses = 0

    @property
    def cache_size(self) -> int:
        return self.encoding.cache_size

    @property
    def model_fingerprint(self) -> str:
        """The trainer's annotation fingerprint (memoized by the trainer).

        Deliberately NOT memoized per engine: the trainer invalidates its
        memo when :meth:`~repro.core.trainer.DoduoTrainer.train` (or
        ``invalidate_fingerprint``) changes the weights, so a live engine's
        cache keys and routes re-key immediately instead of aliasing stale
        cached annotations onto new weights.  The memo makes repeated
        access cheap (no weight walk).

        The engine's compute dtype is folded in (``EngineConfig.dtype``),
        so a float64 engine and a float32 engine over the same weights
        never share cached bytes.  So is the probe policy
        (``EngineConfig.probe_mode``/``probe_budget``): a planned engine
        probes a different pair set for the same ``pairs=None`` request,
        and its cache entries and routes must never alias exhaustive ones.
        And so is ``EngineConfig.waste_budget``: near-width packing trades
        the byte-identity contract for fewer passes, so a packed engine's
        bytes must never alias an exact-bucketing engine's cache entries
        (the default 0 stays marker-free, preserving persisted keys).
        """
        probe = (
            self.probe_planner.fingerprint_tag()
            if self.probe_planner is not None
            else None
        )
        return self.trainer.annotation_fingerprint(
            dtype=self.config.dtype,
            probe=probe,
            waste_budget=self.config.waste_budget,
            precision=self.config.precision,
        )

    # ------------------------------------------------------------------
    # Proof persistence
    # ------------------------------------------------------------------
    # Kernel proofs (bitwise verdicts per shape) and the int8 accuracy
    # gate live in the session workspace's ProofCache — per process, so
    # every pool worker and every crash-restart used to pay the full
    # dark-launch double-compute (and the calibration pass) again.  With
    # a persistent tier attached, verdicts are written as a JSON sidecar
    # keyed by the model fingerprint: any proof is invalidated the moment
    # weights, dtype, precision, or probe policy change, because the key
    # changes with them.  No persistent tier → both helpers no-op.

    def _proofs_path(self) -> Optional[Path]:
        root = getattr(self.result_cache, "directory", None) or self.config.cache_dir
        if root is None:
            return None
        return Path(root) / "proofs" / f"{self.model_fingerprint}.json"

    def _session_proofs(self):
        """The live session's proof cache, or None on the Tensor path."""
        session = self.trainer.model._resolve_session(
            self.config.kernels, self.config.compute_precision
        )
        if session is None:
            return None
        return session.workspace.proofs

    def _hydrate_proofs(self) -> None:
        path = self._proofs_path()
        if path is None:
            return
        proofs = self._session_proofs()
        if proofs is None or proofs is self._hydrated_proofs:
            return
        self._hydrated_proofs = proofs
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            # Missing or corrupt sidecar degrades to re-proving.
            return
        proofs.load_payload(payload)

    def _persist_proofs(self) -> None:
        proofs = self._session_proofs()
        if proofs is None or not proofs.dirty:
            return
        path = self._proofs_path()
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        tmp.write_text(json.dumps(proofs.to_payload()), encoding="utf-8")
        os.replace(tmp, path)
        proofs.dirty = False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _as_request(
        self, item: RequestLike, options: Optional[AnnotationOptions] = None
    ) -> AnnotationRequest:
        if isinstance(item, AnnotationRequest):
            return item
        if isinstance(item, Table):
            return AnnotationRequest(
                table=item, options=options or self.config.default_options
            )
        raise TypeError(f"expected a Table or AnnotationRequest, got {type(item)!r}")

    def _signature(
        self,
        request: AnnotationRequest,
        encoded: object,
        planned: Optional[Tuple[Tuple[int, int], ...]] = None,
    ) -> Tuple[int, int]:
        """Exact-batching key of one request (see
        :meth:`~repro.encoding.EncodingPipeline.annotation_signature`).

        ``planned`` is the probe planner's pair set for this request (only
        in planned mode, only for ``pairs=None`` relation requests) — the
        signature must reflect the pairs that will actually be probed.

        Out-of-range explicit pairs are skipped here — the trainer validates
        them with a proper error message; a slightly loose signature only
        affects which requests *could* have shared a batch, never bytes.
        """
        if not isinstance(encoded, list):
            return (encoded.length, 0)  # type: ignore[attr-defined]
        num_columns = len(encoded)
        if (
            not request.options.with_relations
            or self.trainer.model.relation_head is None
        ):
            pairs: Sequence[Tuple[int, int]] = ()
        elif request.pairs is not None:
            pairs = [
                (i, j)
                for i, j in request.pairs
                if 0 <= i < num_columns and 0 <= j < num_columns
            ]
        elif planned is not None:
            pairs = planned
        else:
            pairs = default_relation_pairs(request.table)
        return self.encoding.annotation_signature(encoded, pairs)

    def _run_chunk(
        self,
        chunk: Sequence[int],
        requests: Sequence[AnnotationRequest],
        encoded: Dict[int, object],
        cached_flags: Dict[int, bool],
        results: List[Optional[AnnotationResult]],
        planned_pairs: Optional[Dict[int, Tuple[Tuple[int, int], ...]]] = None,
    ) -> None:
        tables = [requests[i].table for i in chunk]
        pair_requests: List[Optional[Sequence[Tuple[int, int]]]] = []
        for i in chunk:
            request = requests[i]
            if not request.options.with_relations:
                pair_requests.append(())  # probe nothing
            elif planned_pairs is not None and i in planned_pairs:
                # The planner already decided this request's probes (and
                # the batch signature was computed from them); handing them
                # over as explicit pairs keeps plan and probe in lockstep.
                pair_requests.append(planned_pairs[i])
            else:
                pair_requests.append(request.pairs)
        any_embeddings = any(requests[i].options.with_embeddings for i in chunk)
        model = self.trainer.model
        passes_before = model.encode_calls
        real_before = model.real_tokens
        padded_before = model.padded_tokens
        fallbacks_before = model.quant_fallbacks
        batch_index = self.stats.batches
        column_cache = self.column_cache
        if column_cache is not None:
            # Re-keyed per chunk: the fingerprint walk is memoized by the
            # trainer, and re-reading it here means weight surgery between
            # chunks orphans stale states instead of serving them.
            column_cache.model_key = self.model_fingerprint
            col_hits_before = column_cache.hits
            col_misses_before = column_cache.misses
        raw = self.trainer.annotate_batch(
            tables,
            encoded=[encoded[i] for i in chunk],
            pair_requests=pair_requests,
            with_embeddings=any_embeddings,
            # Keep the trainer's internal re-plan aligned with this engine's
            # policy: with a waste budget the chunk is a packed (possibly
            # mixed-width) bucket that must stay one batch, not be split
            # back into exact buckets.
            waste_budget=self.config.waste_budget,
            kernels=self.config.kernels,
            compute_dtype=self.config.compute_precision,
            column_cache=column_cache,
        )
        if column_cache is not None:
            self.stats.column_hits += column_cache.hits - col_hits_before
            self.stats.column_misses += column_cache.misses - col_misses_before
        self.stats.pairs_probed += sum(
            len(raw_item.probed_pairs) for raw_item in raw
        )
        self.stats.batches += 1
        self.stats.encoder_passes += model.encode_calls - passes_before
        self.stats.real_tokens += model.real_tokens - real_before
        self.stats.padded_tokens += model.padded_tokens - padded_before
        self.stats.quant_fallbacks += model.quant_fallbacks - fallbacks_before
        for i, raw_item in zip(chunk, raw):
            results[i] = self._build_result(
                requests[i], raw_item, cached_flags[i], batch_index
            )

    def _build_result(
        self,
        request: AnnotationRequest,
        raw: RawTableAnnotation,
        from_cache: bool,
        batch_index: int,
    ) -> AnnotationResult:
        options = request.options
        dataset = self.trainer.dataset
        multi_label = self.trainer.config.multi_label
        threshold = (
            options.score_threshold
            if options.score_threshold is not None
            else DEFAULT_DECISION_THRESHOLD
        )
        coltypes: List[List[str]] = []
        if multi_label:
            # The trainer owns the multi-label decision rule
            # (threshold-or-argmax); reusing it keeps the legacy-parity
            # guarantee in one place.
            mask = self.trainer._predict_multilabel(raw.type_probs, threshold)
            for row in mask:
                coltypes.append([dataset.type_vocab[k] for k in np.flatnonzero(row)])
        else:
            coltypes = [
                [dataset.type_vocab[int(row.argmax())]] for row in raw.type_probs
            ]
        type_scores = [
            self._score_dict(raw.type_probs[c], dataset.type_vocab, options.top_k)
            for c in range(len(raw.type_probs))
        ]
        colrels: Dict[Tuple[int, int], List[str]] = {}
        for pair, probs in raw.relation_probs.items():
            if multi_label:
                rel_mask = self.trainer._predict_multilabel(probs[None], threshold)[0]
                colrels[pair] = [
                    dataset.relation_vocab[k] for k in np.flatnonzero(rel_mask)
                ]
            else:
                colrels[pair] = [dataset.relation_vocab[int(probs.argmax())]]
        embeddings = raw.embeddings if options.with_embeddings else None
        annotated = AnnotatedTable(
            table=request.table,
            coltypes=coltypes,
            colrels=colrels,
            colemb=embeddings,
            type_scores=type_scores,
            requested_pairs=list(raw.probed_pairs),
        )
        return AnnotationResult(
            request=request,
            annotated=annotated,
            from_cache=from_cache,
            batch_index=batch_index,
        )

    @staticmethod
    def _score_dict(
        probs: np.ndarray, vocab: Sequence[str], top_k: Optional[int]
    ) -> Dict[str, float]:
        if top_k is None:
            # Full distribution in vocabulary order — the legacy layout.
            return {name: float(probs[k]) for k, name in enumerate(vocab)}
        ranked = sorted(
            ((name, float(probs[k])) for k, name in enumerate(vocab)),
            key=lambda item: (-item[1], item[0]),
        )
        return dict(ranked[:top_k])
