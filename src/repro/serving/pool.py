"""Multi-process serving pool: N workers behind one TCP address.

``repro serve --listen HOST:PORT --workers N`` runs this module: a
parent process that owns the listening address and N worker processes
that each run a full, independent serving stack — ``ModelRegistry`` →
``AnnotationGateway`` → :class:`~repro.serving.server.AnnotationServer`
— over the shared listener.  Workers never share Python state; they
share exactly two things:

* **The socket.**  On platforms with ``SO_REUSEPORT`` (Linux, modern
  BSDs) the parent binds a non-listening reservation socket (reserving
  the port and learning it when ``--listen HOST:0`` asked for an
  ephemeral one) and every worker binds + listens on the same address
  with ``reuse_port=True`` — the kernel then load-balances incoming
  connections across the workers' accept queues.  Elsewhere the parent
  binds + listens once and passes the listening socket to each worker
  (``multiprocessing``'s fd-passing reduction), whose asyncio servers
  accept-race on the inherited descriptor.
* **The result cache.**  Each worker opens the per-fingerprint cache
  directories through :class:`~repro.serving.fabric.FabricCache` with a
  process-unique writer id (``w<slot>-pid<PID>``): appends go to the
  worker's own segment files, reads see every sibling's entries, so a
  table annotated once by any worker is a warm disk hit pool-wide.

Control plane
-------------
Each worker holds two pipes to the parent.  The *command* pipe carries
parent→worker requests (``collect`` a local stats snapshot, ``stop``
and drain); the *event* pipe carries worker→parent messages (``ready``
with the bound port, ``stats``/``shutdown`` relayed from a client's
admin record).  A client's ``{"op": "stats"}`` on ANY connection
therefore answers with the pool-wide merged view: the worker forwards
the request up the event pipe, the parent fans ``collect`` out to every
live worker, merges the numeric counters, and the original worker
answers the client.  ``{"op": "shutdown"}`` acknowledges the client,
then asks the parent to drain the whole pool.

Supervision
-----------
The parent watches worker sentinels; a worker that dies while the pool
is running is restarted with exponential backoff, up to
``max_restarts`` per slot.  A restarted worker re-opens the fabric
under a fresh writer id, so a crash mid-append never corrupts what
other workers can read (their tails stop at the last complete line).
SIGINT/SIGTERM to the parent drain every worker: each in-flight and
already-accepted request is answered before its worker exits
(`AnnotationServer.stop` semantics, per worker).

Workers ignore SIGINT (the parent coordinates Ctrl-C, which the shell
delivers group-wide) and treat a direct SIGTERM as "drain and exit" —
the supervisor then restarts the slot, which is also how a rolling
restart of a live pool looks from the outside.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "PoolConfig",
    "ServingPool",
    "merge_counters",
    "resolve_sharding",
]


def _reuseport_available() -> bool:
    return hasattr(socket, "SO_REUSEPORT")


def resolve_sharding(mode: str) -> str:
    """``auto`` → ``reuseport`` where the kernel supports it, else
    ``inherit`` (parent listens, workers accept-race the inherited fd)."""
    if mode == "auto":
        return "reuseport" if _reuseport_available() else "inherit"
    if mode == "reuseport" and not _reuseport_available():
        raise ValueError("SO_REUSEPORT is not available on this platform")
    if mode not in ("reuseport", "inherit"):
        raise ValueError(f"unknown sharding mode: {mode!r}")
    return mode


@dataclass
class PoolConfig:
    """Everything a worker needs to rebuild the serving stack.

    Picklable by construction (primitives and tuples only) so it crosses
    the ``multiprocessing`` boundary under any start method.  The fields
    mirror the ``repro serve`` flags they come from.
    """

    specs: List[Tuple[str, str]]          # (name, bundle dir) routes
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    cache_dir: Optional[str] = None
    batch_size: int = 8
    max_latency: float = 0.010
    exact: bool = True
    max_live: Optional[int] = None
    with_embeddings: bool = False
    admin: bool = True
    top_k: Optional[int] = None   # AnnotationOptions default (CLI passes 3)
    score_threshold: Optional[float] = None
    dtype: str = "float32"                # engine compute precision
    kernels: str = "fast"                 # fast (proof-gated) | reference
    column_cache_size: int = 1024         # column-state cache entries
    column_cache_persist: bool = False    # spill column states to the fabric
    probe_mode: str = "exhaustive"        # relation probing: exhaustive | planned
    probe_budget: Optional[int] = None    # planned pairs cap per table
    precision: Optional[str] = None       # weight representation (int8 quantized)
    weight_arena: bool = False            # serve weights from a shared mmap arena
    # name → arena file, filled by the parent before spawning (see
    # ServingPool.start): workers then map the SAME pre-built file, which
    # is the whole point — one physical weight copy pool-wide.
    arena_paths: Dict[str, str] = field(default_factory=dict)
    shutdown_grace: float = 10.0
    sharding: str = "auto"                # auto | reuseport | inherit
    start_method: Optional[str] = None    # default: fork where available
    max_restarts: int = 3                 # per worker slot
    restart_backoff: float = 0.5          # seconds, doubles per restart
    stats_timeout: float = 5.0            # per-worker collect deadline
    ready_timeout: float = 60.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1: {self.workers}")
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0: {self.max_restarts}")
        resolve_sharding(self.sharding)  # validate early, in the parent
        # Probe knobs fail in the parent too, not in a spawned worker.
        if self.probe_mode not in ("exhaustive", "planned"):
            raise ValueError(
                f"probe_mode must be 'exhaustive' or 'planned': "
                f"{self.probe_mode!r}"
            )
        if self.probe_budget is not None and self.probe_mode != "planned":
            raise ValueError(
                "probe_budget requires probe_mode='planned' (exhaustive "
                "probing has no budget to apply)"
            )
        if self.precision not in (None, "float32", "float64", "int8"):
            raise ValueError(
                f"precision must be one of None, 'float32', 'float64', "
                f"'int8': {self.precision!r}"
            )


def merge_counters(base: Dict, extra: Dict) -> Dict:
    """Merge one worker's stats dict into ``base``, in place.

    Numeric leaves add; nested dicts recurse; booleans and strings keep
    the first worker's value (they are modes/names — ``planner_mode``,
    fingerprints — identical across a healthy pool).  Derived ratios
    would be wrong if summed; :func:`_fix_ratios` recomputes them from
    the merged raw counters afterwards.
    """
    for key, value in extra.items():
        if isinstance(value, dict):
            current = base.get(key)
            if not isinstance(current, dict):
                current = {}
                base[key] = current
            merge_counters(current, value)
        elif isinstance(value, bool):
            base.setdefault(key, value)
        elif isinstance(value, (int, float)):
            current = base.get(key, 0)
            base[key] = (current if isinstance(current, (int, float)) else 0) + value
        else:
            base.setdefault(key, value)
    return base


def _fix_ratios(node: Dict) -> None:
    """Recompute derived ratios from merged raw counters (a mean of
    per-worker ratios would weight idle workers equally with busy ones)."""
    for value in node.values():
        if isinstance(value, dict):
            _fix_ratios(value)
    if "padding_waste" in node and "padded_tokens" in node:
        padded = node.get("padded_tokens") or 0
        real = node.get("real_tokens") or 0
        node["padding_waste"] = ((padded - real) / padded) if padded else 0.0
    if "column_hit_rate" in node and "column_hits" in node:
        hits = node.get("column_hits") or 0
        total = hits + (node.get("column_misses") or 0)
        node["column_hit_rate"] = (hits / total) if total else 0.0
    if "probe_prune_rate" in node and "pairs_pruned" in node:
        pruned = node.get("pairs_pruned") or 0
        total = pruned + (node.get("pairs_planned") or 0)
        node["probe_prune_rate"] = (pruned / total) if total else 0.0


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


def _worker_main(
    slot: int,
    config: PoolConfig,
    listen_sock,
    cmd_conn,
    evt_conn,
    stale_fds=(),
) -> None:
    """Entry point of one worker process (module-level: picklable under
    every start method).  Builds registry → gateway → server, announces
    readiness on the event pipe, then serves until told to stop."""
    import asyncio
    import signal

    from .engine import EngineConfig
    from .gateway import AnnotationGateway
    from .queue import QueueConfig
    from .registry import ModelRegistry
    from .request import AnnotationOptions
    from .server import AnnotationServer

    # Under fork, this process inherited the PARENT-side ends of every
    # control pipe alive at fork time — its own and its siblings'.
    # Holding those write ends would keep every cmd pipe from ever
    # reaching EOF, defeating the died-parent drain below: close them.
    # (Empty under spawn, where fd numbers do not transfer.)
    for fd in stale_fds:
        try:
            os.close(fd)
        except OSError:
            pass

    # Ctrl-C in a terminal signals the whole foreground process group;
    # the parent turns it into a coordinated drain, so workers must not
    # also die on the raw signal.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass

    registry = ModelRegistry(
        max_live=config.max_live,
        engine_config=EngineConfig(
            batch_size=config.batch_size,
            dtype=config.dtype,
            kernels=config.kernels,
            column_cache_size=config.column_cache_size,
            column_cache_persist=config.column_cache_persist,
            probe_mode=config.probe_mode,
            probe_budget=config.probe_budget,
            precision=config.precision,
            weight_arena=config.weight_arena,
        ),
        cache_dir=config.cache_dir,
        fabric_writer=f"w{slot}-pid{os.getpid()}"
        if config.cache_dir is not None
        else None,
    )
    for name, path in config.specs:
        # The parent pre-built the arena (ServingPool.start), so every
        # worker — including crash-restarted ones — maps the same file
        # instead of re-parsing the bundle.
        registry.register(name, path, arena=config.arena_paths.get(name))
    gateway = AnnotationGateway(
        registry,
        QueueConfig(
            max_batch=config.batch_size,
            max_latency=config.max_latency,
            exact=config.exact,
        ),
    )
    options = AnnotationOptions(
        with_embeddings=config.with_embeddings,
        top_k=config.top_k,
        score_threshold=config.score_threshold,
    )

    # The event pipe is shared by the admin handler (any executor
    # thread) and the ready announcement; one lock keeps each
    # send→recv exchange atomic.
    evt_lock = threading.Lock()

    def admin_handler(record, _gateway):
        """Pool-level admin ops; ``None`` falls through to the local
        protocol handler (register/unregister/health mutate THIS worker
        only — documented, and surfaced in docs/scaling.md)."""
        if record.op == "stats":
            try:
                with evt_lock:
                    evt_conn.send(("stats",))
                    merged = evt_conn.recv()
            except (EOFError, OSError):
                return None  # parent gone: answer with local stats
            answer = {"ok": True, "op": "stats"}
            answer.update(merged)
            if record.record_id is not None:
                answer["id"] = record.record_id
            return answer
        if record.op == "shutdown":
            answer = {"ok": True, "op": "shutdown"}
            if record.record_id is not None:
                answer["id"] = record.record_id
            try:
                with evt_lock:
                    evt_conn.send(("shutdown",))
                    evt_conn.recv()  # parent ack: drain is scheduled
            except (EOFError, OSError):
                pass
            return answer
        return None

    def local_stats() -> Dict:
        snapshot = gateway.stats
        return {
            "worker": slot,
            "pid": os.getpid(),
            "server": server.stats.to_dict(),
            "gateway": snapshot.to_dict(),
            "registry": registry.stats.to_dict(),
        }

    server = AnnotationServer(
        gateway,
        options,
        host=config.host,
        port=config.port,
        with_embeddings=config.with_embeddings,
        admin=config.admin,
        shutdown_grace=config.shutdown_grace,
        sock=listen_sock,
        reuse_port=listen_sock is None,
        admin_handler=admin_handler if config.admin else None,
    )

    async def _serve() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        stop_event = asyncio.Event()

        def request_stop() -> None:
            try:
                loop.call_soon_threadsafe(stop_event.set)
            except RuntimeError:
                pass  # loop already closed

        try:
            loop.add_signal_handler(signal.SIGTERM, stop_event.set)
        except (NotImplementedError, RuntimeError, ValueError):
            pass

        def cmd_listener() -> None:
            while True:
                try:
                    message = cmd_conn.recv()
                except (EOFError, OSError):
                    # Parent died: drain and exit rather than serve as
                    # an unsupervised orphan.
                    request_stop()
                    return
                if message[0] == "collect":
                    try:
                        cmd_conn.send(local_stats())
                    except (OSError, ValueError):
                        pass
                elif message[0] == "stop":
                    request_stop()
                    return

        threading.Thread(
            target=cmd_listener, name=f"pool-cmd-w{slot}", daemon=True
        ).start()
        try:
            with evt_lock:
                evt_conn.send(("ready", os.getpid(), server.address[1]))
        except (EOFError, OSError):
            pass
        await stop_event.wait()
        await server.stop()
        # Post-drain snapshot: every answered-while-draining request is
        # in these counters, so the parent's final merge (the CLI
        # epilogue) is exact, not a pre-drain approximation.
        try:
            with evt_lock:
                evt_conn.send(("final", local_stats()))
        except (EOFError, OSError):
            pass

    try:
        asyncio.run(_serve())
    finally:
        gateway.close()  # drain engine workers, flush + close fabric tiers


# ----------------------------------------------------------------------
# Parent process
# ----------------------------------------------------------------------


@dataclass
class _Slot:
    """Parent-side state of one worker position."""

    index: int
    process: Optional[multiprocessing.process.BaseProcess] = None
    cmd_conn: Optional[multiprocessing.connection.Connection] = None
    evt_conn: Optional[multiprocessing.connection.Connection] = None
    cmd_lock: threading.Lock = field(default_factory=threading.Lock)
    ready: threading.Event = field(default_factory=threading.Event)
    pid: Optional[int] = None
    port: Optional[int] = None
    evt_thread: Optional[threading.Thread] = None
    restarts: int = 0
    retired: bool = False          # exhausted restart budget
    respawn_at: Optional[float] = None


class ServingPool:
    """Parent-side orchestrator: bind, spawn, supervise, drain.

    Lifecycle::

        pool = ServingPool(PoolConfig(specs=[("default", "models/run")],
                                      host="127.0.0.1", port=9000,
                                      workers=4, cache_dir="anno-cache/"))
        host, port = pool.start()   # all workers accepting
        pool.wait()                 # until shutdown op / all slots dead
        pool.stop()                 # idempotent; drains and joins

    ``stop`` is safe from any thread (the CLI calls it from the main
    thread after ``wait`` returns or ``KeyboardInterrupt`` lands; a
    client ``shutdown`` op triggers it from a pipe-listener thread).
    """

    def __init__(self, config: PoolConfig) -> None:
        self.config = config
        self.sharding = resolve_sharding(config.sharding)
        method = config.start_method
        if method is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._ctx = multiprocessing.get_context(method)
        self._slots: List[_Slot] = [_Slot(index=i) for i in range(config.workers)]
        self._parent_sock: Optional[socket.socket] = None
        self._bound: Optional[Tuple[str, int]] = None
        self._lock = threading.Lock()
        self._started = False
        self._stopping = False
        self._done = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        self._wake_r, self._wake_w = os.pipe()
        self._retired_stats: List[Dict] = []  # post-drain worker snapshots
        self.final_stats: Optional[Dict] = None
        self.total_restarts = 0

    # -- binding -------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        if self._bound is None:
            raise RuntimeError("pool is not started")
        return self._bound

    def _bind(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            if self.sharding == "reuseport":
                # Reservation socket: binds (learning the ephemeral port
                # for HOST:0) but never listens — a non-listening TCP
                # socket takes no connections, while holding the port
                # against unrelated binds for the pool's lifetime.
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
                sock.bind((self.config.host, self.config.port))
            else:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                sock.bind((self.config.host, self.config.port))
                sock.listen(128)
        except OSError:
            sock.close()
            raise
        self._parent_sock = sock
        self._bound = sock.getsockname()[:2]

    # -- spawning ------------------------------------------------------

    def _spawn(self, slot: _Slot) -> None:
        for conn in (slot.cmd_conn, slot.evt_conn):
            if conn is not None:  # endpoints of a previous incarnation
                try:
                    conn.close()
                except OSError:
                    pass
        cmd_parent, cmd_child = self._ctx.Pipe()
        evt_parent, evt_child = self._ctx.Pipe()
        worker_config = PoolConfig(**{**self.config.__dict__})
        if self.sharding == "reuseport":
            # Workers bind themselves on the learned port.
            worker_config.port = self._bound[1]
            listen_sock = None
        else:
            listen_sock = self._parent_sock
        # Parent-side pipe fds the forked child must close (see
        # _worker_main): every live slot's control pipes plus the pair
        # just created for this slot.
        stale_fds = []
        if self._ctx.get_start_method() == "fork":
            parent_conns = [cmd_parent, evt_parent]
            for other in self._slots:
                parent_conns.extend((other.cmd_conn, other.evt_conn))
            for conn in parent_conns:
                try:
                    if conn is not None and not conn.closed:
                        stale_fds.append(conn.fileno())
                except OSError:
                    pass
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                slot.index,
                worker_config,
                listen_sock,
                cmd_child,
                evt_child,
                tuple(stale_fds),
            ),
            name=f"repro-serve-w{slot.index}",
            daemon=True,  # a dying parent must never leak accept loops
        )
        process.start()
        cmd_child.close()
        evt_child.close()
        slot.process = process
        slot.cmd_conn = cmd_parent
        slot.evt_conn = evt_parent
        slot.ready = threading.Event()
        slot.respawn_at = None
        slot.evt_thread = threading.Thread(
            target=self._evt_listener,
            args=(slot, evt_parent),
            name=f"pool-evt-w{slot.index}",
            daemon=True,
        )
        slot.evt_thread.start()

    def start(self) -> Tuple[str, int]:
        with self._lock:
            if self._started:
                raise RuntimeError("pool already started")
            self._started = True
        # Fail fast in the parent on a bad route: workers would each
        # crash on register() and burn the whole restart budget.
        from pathlib import Path

        for name, path in self.config.specs:
            if not (Path(path) / "bundle.json").exists():
                raise ValueError(
                    f"model {name!r}: {path} is not a bundle directory "
                    "(no bundle.json)"
                )
        if self.config.weight_arena:
            # Serialize each model's weights ONCE, in the parent, before
            # any worker exists: workers (and crash restarts) then map
            # the same file, so the page cache backs one physical copy
            # of the weights pool-wide.  Paths travel as strings to keep
            # the PoolConfig picklable for spawn-based start methods.
            from ..core.persistence import ensure_model_arena

            arena_precision = (
                "int8" if self.config.precision == "int8" else "float32"
            )
            for name, path in self.config.specs:
                self.config.arena_paths[name] = str(
                    ensure_model_arena(path, precision=arena_precision)
                )
        self._bind()
        if self._ctx.get_start_method() == "fork":
            # Freeze the parent heap before forking: moving every object
            # to the permanent generation keeps the children's cyclic GC
            # from walking (and so dirtying, via refcount writes) the
            # COW pages holding the parent's interpreter state.  The
            # parent is a long-lived supervisor, so never collecting its
            # pre-fork garbage is a fine trade for keeping those pages
            # shared across all workers — including crash restarts,
            # which fork from this same frozen heap.
            import gc

            gc.freeze()
        for slot in self._slots:
            self._spawn(slot)
        deadline = time.monotonic() + self.config.ready_timeout
        for slot in self._slots:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not slot.ready.wait(remaining):
                self.stop()
                raise RuntimeError(
                    f"worker {slot.index} did not become ready within "
                    f"{self.config.ready_timeout:.0f}s"
                )
        self._supervisor = threading.Thread(
            target=self._supervise, name="pool-supervisor", daemon=True
        )
        self._supervisor.start()
        return self.address

    # -- event plane ---------------------------------------------------

    def _evt_listener(self, slot: _Slot, conn) -> None:
        """One thread per spawned worker: service its event pipe until
        EOF (worker exit).  ``stats`` asks for the merged view; the
        reply goes back down the same pipe."""
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            if message[0] == "ready":
                slot.pid, slot.port = message[1], message[2]
                slot.ready.set()
            elif message[0] == "final":
                # A worker's post-drain counters: folded into every later
                # merge, so pool totals stay monotone across restarts.
                with self._lock:
                    self._retired_stats.append(message[1])
            elif message[0] == "stats":
                try:
                    conn.send(self._merged_stats())
                except (OSError, ValueError):
                    pass
            elif message[0] == "shutdown":
                try:
                    conn.send(("ok",))
                except (OSError, ValueError):
                    pass
                threading.Thread(
                    target=self.stop, name="pool-shutdown", daemon=True
                ).start()

    def _collect(self, slot: _Slot) -> Optional[Dict]:
        """One worker's local stats snapshot, or ``None`` if it cannot
        answer within ``stats_timeout`` (dying / wedged)."""
        if slot.process is None or not slot.process.is_alive():
            return None
        conn = slot.cmd_conn
        if conn is None:
            return None
        with slot.cmd_lock:
            try:
                conn.send(("collect",))
                if not conn.poll(self.config.stats_timeout):
                    return None
                return conn.recv()
            except (EOFError, OSError, ValueError):
                return None

    def _merged_stats(self) -> Dict:
        """Pool-wide stats: per-worker snapshots plus merged counters
        (the payload a client's ``{"op": "stats"}`` answer carries)."""
        snapshots = [s for s in map(self._collect, self._slots) if s is not None]
        with self._lock:
            retired = list(self._retired_stats)
        merged: Dict[str, Dict] = {"server": {}, "gateway": {}, "registry": {}}
        for snapshot in retired + snapshots:
            for section in ("server", "gateway", "registry"):
                merge_counters(merged[section], snapshot.get(section, {}))
        _fix_ratios(merged["gateway"])
        with self._lock:
            live = sum(
                1
                for s in self._slots
                if s.process is not None and s.process.is_alive()
            )
            restarts = self.total_restarts
        merged["pool"] = {
            "workers": self.config.workers,
            "live": live,
            "answered": len(snapshots),
            "restarts": restarts,
            "sharding": self.sharding,
            "per_worker": [
                {
                    "worker": s.get("worker"),
                    "pid": s.get("pid"),
                    "connections": s.get("server", {}).get("connections", 0),
                    "requests": s.get("server", {}).get("requests", 0),
                    "completed": s.get("gateway", {}).get("completed", 0),
                }
                for s in snapshots
            ],
        }
        return merged

    def stats(self) -> Dict:
        """Merged pool stats, callable from the parent (the CLI epilogue
        and tests use this; clients get the same payload via the admin
        plane)."""
        return self._merged_stats()

    # -- supervision ---------------------------------------------------

    def _supervise(self) -> None:
        backstop = self.config.restart_backoff or 0.05
        while True:
            with self._lock:
                if self._stopping:
                    return
                # A dead process's sentinel stays readable forever, so
                # keeping it in the wait set until its death has been
                # *scheduled* (respawn_at set / slot retired) makes the
                # wait return immediately instead of sleeping through a
                # death that was reaped between the scheduling pass
                # below and this collection.
                sentinels = [
                    slot.process.sentinel
                    for slot in self._slots
                    if slot.process is not None
                    and not slot.retired
                    and (slot.process.is_alive() or slot.respawn_at is None)
                ]
                pending = [
                    slot.respawn_at
                    for slot in self._slots
                    if slot.respawn_at is not None
                ]
            timeout: Optional[float] = None
            if pending:
                timeout = max(0.0, min(pending) - time.monotonic())
            multiprocessing.connection.wait(
                sentinels + [self._wake_r], timeout=timeout
            )
            try:
                # Drain wake bytes (non-blocking; may be empty).
                os.set_blocking(self._wake_r, False)
                while os.read(self._wake_r, 64):
                    pass
            except (BlockingIOError, OSError):
                pass
            with self._lock:
                if self._stopping:
                    return
            now = time.monotonic()
            live = 0
            for slot in self._slots:
                if slot.retired:
                    continue
                process = slot.process
                if process is not None and process.is_alive():
                    live += 1
                    continue
                if slot.respawn_at is None:
                    # Newly observed death: schedule the restart.
                    if process is not None:
                        process.join(timeout=0)
                    if slot.restarts >= self.config.max_restarts:
                        slot.retired = True
                        continue
                    slot.restarts += 1
                    with self._lock:
                        self.total_restarts += 1
                    delay = backstop * (2 ** (slot.restarts - 1))
                    slot.respawn_at = now + delay
                    live += 1  # still counts: a restart is coming
                elif slot.respawn_at <= now:
                    # Re-check under the lock so a restart never races a
                    # concurrent stop() (which joins this thread before
                    # signalling workers).
                    with self._lock:
                        if self._stopping:
                            return
                        self._spawn(slot)
                    live += 1
                else:
                    live += 1
            if live == 0:
                # Every slot exhausted its restart budget: the pool
                # cannot serve, so it shuts itself down.
                threading.Thread(
                    target=self.stop, name="pool-collapse", daemon=True
                ).start()
                return

    # -- shutdown ------------------------------------------------------

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the pool is fully stopped (client shutdown op,
        supervisor collapse, or another thread's :meth:`stop`)."""
        return self._done.wait(timeout)

    def stop(self, collect_stats: bool = True) -> None:
        """Coordinated drain: final stats, ``stop`` command to every
        worker, bounded join, then hard-kill stragglers.  Idempotent —
        concurrent callers wait for the first one to finish."""
        with self._lock:
            if self._stopping:
                already = True
            else:
                self._stopping = True
                already = False
            # Snapshot under the lock: ``_started`` is written by start()
            # while holding it, and stop() may race a concurrent start().
            started = self._started
        if already:
            self._done.wait()
            return
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass
        supervisor = self._supervisor
        if supervisor is not None and supervisor is not threading.current_thread():
            supervisor.join(timeout=5.0)  # no respawns once we signal stop
        for slot in self._slots:
            conn = slot.cmd_conn
            if conn is None or slot.process is None or not slot.process.is_alive():
                continue
            with slot.cmd_lock:
                try:
                    conn.send(("stop",))
                except (OSError, ValueError):
                    pass
        deadline = time.monotonic() + self.config.shutdown_grace + 5.0
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        for slot in self._slots:
            # Let each event listener drain its pipe (the workers' final
            # post-drain snapshots may still be buffered) before closing.
            if slot.evt_thread is not None:
                slot.evt_thread.join(timeout=5.0)
        if collect_stats and started:
            try:
                # Every worker is down; this merges their final
                # snapshots, which include requests answered during the
                # drain itself.
                self.final_stats = self._merged_stats()
            except Exception:  # noqa: BLE001 - stats must not block drain
                self.final_stats = None
        for slot in self._slots:
            for conn in (slot.cmd_conn, slot.evt_conn):
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:
                        pass
            slot.cmd_conn = slot.evt_conn = None
        if self._parent_sock is not None:
            try:
                self._parent_sock.close()
            except OSError:
                pass
            self._parent_sock = None
        self._done.set()

    def __enter__(self) -> "ServingPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
