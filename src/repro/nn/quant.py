"""Per-channel symmetric int8 weight quantization and its accuracy gate.

PR 7's fast path kept the byte-identity contract: every fused kernel is
proof-gated against the reference Tensor forward, so ``float32`` serving
emits the exact legacy bytes.  Int8 quantization is the deliberately
*lossy* half of ROADMAP item 1: weights are stored as int8 with one
float32 scale per **output channel** (GEMM column), accumulation stays
float32, and outputs drift from the float reference by construction.

That drift must never be silent, so the int8 path ships behind an
**accuracy gate** instead of a bitwise proof: on first use a quantized
session runs one calibration pass — the same encoded inputs through the
quantized and the float32 reference forward — and records the max
absolute drift per (layer, shape) in the session's
:class:`~repro.nn.kernels.ProofCache` (the keys live beside the matmul
proofs and persist with them).  A drift above the tolerances below is a
*disproof*: the session permanently falls back to the float32 path and
every fallback is counted (``EngineStats.quant_fallbacks``), so a model
whose weights do not quantize cleanly degrades loudly, not silently.

Quantization recipe
-------------------
For a weight matrix ``W`` of shape ``(in, out)`` used as ``x @ W``:

* ``scale[j] = max(|W[:, j]|) / 127`` (all-zero columns get scale 1.0)
* ``q[:, j]  = clip(rint(W[:, j] / scale[j]), -127, 127)`` as int8
* the float32 compute array is ``q * scale`` — dequantized **once** at
  session build, so steady-state inference runs plain float32 GEMMs over
  weights that round-trip through int8.  The int8 tensor (plus scales)
  is the authoritative representation: it is what the weight arena
  stores and what identity/fingerprints derive from.

Per-channel symmetric quantization commutes with column concatenation,
so quantizing Q, K and V separately equals quantizing the packed QKV
matrix — the fused projection needs no special casing.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from .layers import Linear, Module

#: Max tolerated absolute drift of any transformer block's hidden states
#: (calibration pass, quantized vs float32 reference).
HIDDEN_DRIFT_TOLERANCE = 0.5

#: Max tolerated absolute drift of type/relation head logits — the gate
#: the accuracy contract is stated in (logit units).
LOGIT_DRIFT_TOLERANCE = 0.5

#: ProofCache key of the summary verdict: ``True`` = the quantized model
#: passed calibration, ``False`` = disproven (permanent float fallback).
GATE_KEY = ("int8-gate",)

#: Key prefix of the per-(layer, shape) drift records.
DRIFT_KEY_PREFIX = "int8-drift"


class QuantizedWeight:
    """One weight matrix in per-channel symmetric int8 form."""

    __slots__ = ("q", "scale")

    def __init__(self, q: np.ndarray, scale: np.ndarray) -> None:
        self.q = q
        self.scale = scale

    @property
    def nbytes(self) -> int:
        return self.q.nbytes + self.scale.nbytes


def quantize_weight(w: np.ndarray) -> QuantizedWeight:
    """Per-output-channel symmetric int8 quantization of ``w``.

    The channel axis is the **last** axis — the GEMM output columns of an
    ``x @ W`` weight (``(in, out)`` for :class:`~repro.nn.layers.Linear`).
    All-zero channels get scale 1.0 so dequantization is exact for them.
    """
    w = np.asarray(w, dtype=np.float32)
    peak = np.max(np.abs(w), axis=tuple(range(w.ndim - 1)))
    scale = np.where(peak > 0, peak / 127.0, 1.0).astype(np.float32)
    q = np.clip(np.rint(w / scale), -127, 127).astype(np.int8)
    return QuantizedWeight(q, scale)


def dequantize_weight(qw: QuantizedWeight) -> np.ndarray:
    """The float32 compute array: ``q * scale`` (one-time, at build)."""
    return (qw.q.astype(np.float32) * qw.scale).astype(np.float32)


def quantize_dequantize(w: np.ndarray) -> np.ndarray:
    """``w`` after an int8 round-trip — the values inference computes with."""
    return dequantize_weight(quantize_weight(w))


def named_linear_weights(module: Module, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
    """``(state-dict name, weight array)`` for every Linear weight.

    Walks instance attributes exactly like ``Module.named_parameters`` so
    the yielded names match state-dict / arena tensor names.  Only the 2-D
    ``weight`` of :class:`~repro.nn.layers.Linear` qualifies: embeddings
    and norms index or scale rather than matrix-multiply, and biases add
    in float32 anyway, so quantizing them buys nothing and costs accuracy.
    """
    if isinstance(module, Linear):
        yield f"{prefix}weight", module.weight.data
        return
    for attr, value in vars(module).items():
        if attr.startswith("_") or attr == "training":
            continue
        name = f"{prefix}{attr}"
        if isinstance(value, Module):
            yield from named_linear_weights(value, prefix=f"{name}.")
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                if isinstance(item, Module):
                    yield from named_linear_weights(item, prefix=f"{name}.{i}.")


def quantizable_weight_names(module: Module) -> set:
    """The state-dict names :func:`named_linear_weights` would quantize."""
    return {name for name, _ in named_linear_weights(module)}


def drift_key(layer: str, shape: Tuple[int, ...]) -> Tuple:
    """ProofCache key of one calibration drift record."""
    return (DRIFT_KEY_PREFIX, layer, tuple(int(s) for s in shape))


def max_drift(a: np.ndarray, b: np.ndarray) -> float:
    """Max absolute elementwise difference (0.0 for empty arrays)."""
    if a.size == 0:
        return 0.0
    return float(np.max(np.abs(np.asarray(a) - np.asarray(b))))
