"""Fused neural-network operations with custom backward passes.

Composite operations such as softmax, layer normalization, GELU, and the
cross-entropy losses are implemented as single graph nodes: that keeps the
autograd tape short and the CPU wall-clock time low compared to composing
them from primitive tensor ops.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor

_SQRT_2_OVER_PI = np.float32(np.sqrt(2.0 / np.pi))


def gelu(x: Tensor) -> Tensor:
    """Gaussian Error Linear Unit (tanh approximation, as used by BERT).

    The cube is computed as ``(x * x) * x`` rather than ``x ** 3``: numpy
    lowers integer powers above 2 to ``pow()`` calls, which profile ~30x
    slower than two multiplies on this hot path.  The optimized in-place
    kernel (:func:`repro.nn.kernels.gelu_`) replays this exact operation
    sequence so both paths stay bitwise identical.
    """
    data = x.data
    squared = data * data
    inner = _SQRT_2_OVER_PI * (data + 0.044715 * (squared * data))
    tanh_inner = np.tanh(inner)
    out_data = 0.5 * data * (1.0 + tanh_inner)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        sech2 = 1.0 - tanh_inner ** 2
        d_inner = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * squared)
        local = 0.5 * (1.0 + tanh_inner) + 0.5 * data * sech2 * d_inner
        x.accumulate_grad(grad * local.astype(data.dtype))

    return x._make_child(out_data.astype(data.dtype), (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        x.accumulate_grad(out_data * (grad - dot))

    return x._make_child(out_data.astype(x.data.dtype), (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - logsumexp

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        softmax_vals = np.exp(out_data)
        x.accumulate_grad(grad - softmax_vals * grad.sum(axis=axis, keepdims=True))

    return x._make_child(out_data.astype(x.data.dtype), (x,), backward)


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable log-sum-exp reduction (used by the CRF forward pass)."""
    shift = x.data.max(axis=axis, keepdims=True)
    exp = np.exp(x.data - shift)
    summed = exp.sum(axis=axis, keepdims=True)
    out_full = shift + np.log(summed)
    out_data = out_full if keepdims else np.squeeze(out_full, axis=axis)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        g = np.asarray(grad)
        if not keepdims:
            g = np.expand_dims(g, axis)
        softmax_vals = exp / summed
        x.accumulate_grad((g * softmax_vals).astype(x.dtype))

    return x._make_child(out_data.astype(x.dtype), (x,), backward)


def cross_entropy_logits(
    logits: Tensor,
    labels: np.ndarray,
    ignore_index: Optional[int] = None,
) -> Tensor:
    """Mean cross entropy between ``logits`` and integer ``labels``.

    Parameters
    ----------
    logits:
        Tensor of shape ``(..., num_classes)``.
    labels:
        Integer array of shape ``(...)``.
    ignore_index:
        Label value excluded from the loss (e.g. padding positions).
    """
    labels = np.asarray(labels)
    flat_logits = logits.data.reshape(-1, logits.shape[-1])
    flat_labels = labels.reshape(-1)

    if ignore_index is not None:
        mask = flat_labels != ignore_index
    else:
        mask = np.ones(flat_labels.shape, dtype=bool)
    count = int(mask.sum())
    if count == 0:
        raise ValueError("cross_entropy_logits received no valid labels")

    shifted = flat_logits - flat_logits.max(axis=-1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - logsumexp

    safe_labels = np.where(mask, flat_labels, 0)
    picked = log_probs[np.arange(len(flat_labels)), safe_labels]
    loss_value = -float((picked * mask).sum(dtype=np.float64) / count)

    def backward(grad: np.ndarray) -> None:
        if not logits.requires_grad:
            return
        probs = np.exp(log_probs)
        probs[np.arange(len(flat_labels)), safe_labels] -= 1.0
        probs *= (mask / count)[:, None]
        logits.accumulate_grad((float(grad) * probs).reshape(logits.shape).astype(logits.dtype))

    return logits._make_child(np.asarray(loss_value, dtype=np.float32), (logits,), backward)


def binary_cross_entropy_logits(
    logits: Tensor,
    targets: np.ndarray,
    sample_mask: Optional[np.ndarray] = None,
) -> Tensor:
    """Mean binary cross entropy with logits (multi-label training).

    Parameters
    ----------
    logits:
        Tensor of shape ``(..., num_labels)``.
    targets:
        Float array of the same shape with entries in ``[0, 1]``.
    sample_mask:
        Optional boolean array of shape ``logits.shape[:-1]`` selecting rows
        that participate in the loss.
    """
    targets = np.asarray(targets, dtype=np.float64)
    x = logits.data.astype(np.float64)
    if sample_mask is None:
        mask = np.ones(x.shape[:-1], dtype=bool)
    else:
        mask = np.asarray(sample_mask, dtype=bool)
    count = int(mask.sum()) * x.shape[-1]
    if count == 0:
        raise ValueError("binary_cross_entropy_logits received no valid rows")

    # log(1 + exp(-|x|)) formulation for numerical stability.
    per_elem = np.maximum(x, 0) - x * targets + np.log1p(np.exp(-np.abs(x)))
    loss_value = float((per_elem * mask[..., None]).sum() / count)

    def backward(grad: np.ndarray) -> None:
        if not logits.requires_grad:
            return
        sig = 1.0 / (1.0 + np.exp(-x))
        g = (sig - targets) * mask[..., None] / count
        logits.accumulate_grad((float(grad) * g).astype(logits.dtype))

    return logits._make_child(np.asarray(loss_value, dtype=np.float32), (logits,), backward)


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last axis with affine parameters."""
    mu = x.data.mean(axis=-1, keepdims=True)
    centered = x.data - mu
    var = (centered ** 2).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    normalized = centered * inv_std
    out_data = normalized * gamma.data + beta.data

    def backward(grad: np.ndarray) -> None:
        dim = x.shape[-1]
        if gamma.requires_grad:
            axes = tuple(range(grad.ndim - 1))
            gamma.accumulate_grad((grad * normalized).sum(axis=axes))
        if beta.requires_grad:
            axes = tuple(range(grad.ndim - 1))
            beta.accumulate_grad(grad.sum(axis=axes))
        if x.requires_grad:
            g_norm = grad * gamma.data
            term1 = g_norm
            term2 = g_norm.mean(axis=-1, keepdims=True)
            term3 = normalized * (g_norm * normalized).mean(axis=-1, keepdims=True)
            x.accumulate_grad(((term1 - term2 - term3) * inv_std).astype(x.dtype))
        del dim

    return x._make_child(out_data.astype(x.dtype), (x, gamma, beta), backward)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` by integer ``indices`` (gradient scatters back)."""
    indices = np.asarray(indices)
    out_data = weight.data[indices]

    def backward(grad: np.ndarray) -> None:
        if not weight.requires_grad:
            return
        full = np.zeros_like(weight.data)
        np.add.at(full, indices.reshape(-1), grad.reshape(-1, weight.shape[-1]))
        weight.accumulate_grad(full)

    return weight._make_child(out_data, (weight,), backward)


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when ``training`` is False or rate is 0."""
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep
    out_data = x.data * mask

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x.accumulate_grad(grad * mask)

    return x._make_child(out_data, (x,), backward)


def attention_bias_from_mask(attention_mask: np.ndarray, dtype=np.float32) -> np.ndarray:
    """Convert a boolean keep-mask ``(B, S)`` into an additive bias ``(B, 1, 1, S)``.

    Positions with ``False`` receive a large negative bias so softmax ignores
    them.
    """
    mask = np.asarray(attention_mask, dtype=bool)
    bias = np.where(mask, 0.0, -1e9).astype(dtype)
    return bias[:, None, None, :]


def visibility_bias(visibility: np.ndarray, dtype=np.float32) -> np.ndarray:
    """Convert a per-pair visibility matrix ``(B, S, S)`` into an additive bias.

    Used by the TURL baseline, whose attention removes cross-column edges.
    """
    vis = np.asarray(visibility, dtype=bool)
    bias = np.where(vis, 0.0, -1e9).astype(dtype)
    return bias[:, None, :, :]
