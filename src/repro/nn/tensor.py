"""Reverse-mode automatic differentiation over numpy arrays.

This module implements the minimal tensor/tape machinery needed to train
Transformer language models on CPU.  It follows the classic design of a
dynamically built computation graph: every operation records its parents and
a closure that accumulates gradients into them, and :meth:`Tensor.backward`
walks the graph in reverse topological order.

Only the operations required by the rest of the library are implemented, but
each supports full broadcasting so composite layers (LayerNorm, attention,
and so on) can be written naturally.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, "Tensor"]

_DEFAULT_DTYPE = np.float32


def _as_array(value: ArrayLike, dtype=_DEFAULT_DTYPE) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value, dtype=dtype)
    return arr


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array plus gradient bookkeeping.

    Parameters
    ----------
    data:
        Array (or scalar) holding the value.  Stored as float32 unless the
        array already carries another floating dtype.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        if isinstance(data, np.ndarray) and data.dtype in (np.float32, np.float64):
            self.data = data
        else:
            self.data = np.asarray(data, dtype=_DEFAULT_DTYPE)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents: Tuple[Tensor, ...] = tuple(_parents)
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    def _make_child(
        self,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        ``grad`` defaults to ones (so scalars behave like losses).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor without grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self.accumulate_grad(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Free intermediate gradient buffers: only leaves (no parents)
                # keep their gradients after backward.
                if node._parents:
                    node.grad = None
                    node._backward = None
                    node._parents = ()

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(_unbroadcast(grad, self.shape))
            if other_t.requires_grad:
                other_t.accumulate_grad(_unbroadcast(grad, other_t.shape))

        return self._make_child(out_data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(-grad)

        return self._make_child(out_data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(_unbroadcast(grad, self.shape))
            if other_t.requires_grad:
                other_t.accumulate_grad(_unbroadcast(-grad, other_t.shape))

        return self._make_child(out_data, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(_unbroadcast(grad * other_t.data, self.shape))
            if other_t.requires_grad:
                other_t.accumulate_grad(_unbroadcast(grad * self.data, other_t.shape))

        return self._make_child(out_data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(_unbroadcast(grad / other_t.data, self.shape))
            if other_t.requires_grad:
                g = -grad * self.data / (other_t.data ** 2)
                other_t.accumulate_grad(_unbroadcast(g, other_t.shape))

        return self._make_child(out_data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad * exponent * self.data ** (exponent - 1))

        return self._make_child(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = grad @ np.swapaxes(other_t.data, -1, -2)
                self.accumulate_grad(_unbroadcast(g, self.shape))
            if other_t.requires_grad:
                g = np.swapaxes(self.data, -1, -2) @ grad
                other_t.accumulate_grad(_unbroadcast(g, other_t.shape))

        return self._make_child(out_data, (self, other_t), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad * out_data)

        return self._make_child(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad / self.data)

        return self._make_child(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad * (1.0 - out_data ** 2))

        return self._make_child(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad * (self.data > 0))

        return self._make_child(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad * out_data * (1.0 - out_data))

        return self._make_child(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is None:
                g = np.broadcast_to(g, self.shape)
            else:
                if not keepdims:
                    g = np.expand_dims(g, axis)
                g = np.broadcast_to(g, self.shape)
            self.accumulate_grad(g.astype(self.data.dtype))

        return self._make_child(np.asarray(out_data, dtype=self.data.dtype), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return out

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad.reshape(original))

        return self._make_child(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad.transpose(inverse))

        return self._make_child(out_data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        out_data = np.swapaxes(self.data, axis1, axis2)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(np.swapaxes(grad, axis1, axis2))

        return self._make_child(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self.accumulate_grad(full)

        return self._make_child(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(shape: Sequence[int], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def ones(shape: Sequence[int], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def randn(
        shape: Sequence[int],
        rng: np.random.Generator,
        scale: float = 1.0,
        requires_grad: bool = False,
    ) -> "Tensor":
        data = rng.standard_normal(shape).astype(_DEFAULT_DTYPE) * scale
        return Tensor(data, requires_grad=requires_grad)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor.accumulate_grad(grad[tuple(index)])

    requires = any(t.requires_grad for t in tensors)
    if not requires:
        return Tensor(out_data)
    return Tensor(out_data, requires_grad=True, _parents=tuple(tensors), _backward=backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor.accumulate_grad(np.squeeze(piece, axis=axis))

    requires = any(t.requires_grad for t in tensors)
    if not requires:
        return Tensor(out_data)
    return Tensor(out_data, requires_grad=True, _parents=tuple(tensors), _backward=backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select with gradient flow into both branches."""
    a_t = a if isinstance(a, Tensor) else Tensor(a)
    b_t = b if isinstance(b, Tensor) else Tensor(b)
    cond = np.asarray(condition)
    out_data = np.where(cond, a_t.data, b_t.data)

    def backward(grad: np.ndarray) -> None:
        if a_t.requires_grad:
            a_t.accumulate_grad(_unbroadcast(grad * cond, a_t.shape))
        if b_t.requires_grad:
            b_t.accumulate_grad(_unbroadcast(grad * (~cond.astype(bool)), b_t.shape))

    requires = a_t.requires_grad or b_t.requires_grad
    if not requires:
        return Tensor(out_data)
    return Tensor(out_data, requires_grad=True, _parents=(a_t, b_t), _backward=backward)


def no_grad_params(params: Iterable[Tensor]) -> None:
    """Clear gradients on an iterable of parameters."""
    for param in params:
        param.zero_grad()
