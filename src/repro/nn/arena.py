"""Zero-copy weight arenas: one mmap-able file, many consumers.

PR 6's serving pool pays N private copies of the model weights — every
worker deserializes ``weights.npz`` (decompress + copy) into its own
heap, and a crash-restarted worker pays the whole parse again.  An
*arena* is the shared-representation fix: the parent serializes a
model's inference weights **once** into a flat file with a content-hash
header, and every consumer — workers, restarts, evict→reload cycles —
constructs its tensors as read-only :func:`numpy.memmap` views over the
same pages.  The kernel's page cache then backs all of them: per-extra-
worker RSS drops by roughly the weight size, and "loading" a model is a
remap, not a deserialize.

File layout (version 1)::

    [0:4)    magic  b"RPWA"
    [4:8)    format version, little-endian uint32
    [8:16)   header length H, little-endian uint64
    [16:16+H) UTF-8 JSON header:
              {"content_hash": ..., "meta": {...},
               "tensors": [{"name", "dtype", "shape",
                            "offset", "nbytes"}, ...]}
    [pad to 64] tensor blobs, each 64-byte aligned, offsets relative to
                the data section start

``content_hash`` is :func:`repro.encoding.cache.content_digest` — the
toolbox's single content-hash recipe — over every tensor's name, dtype,
shape, and raw bytes, so arenas are content-addressed like every other
persisted tier.  Writes are atomic (temp file + ``os.replace``): a
crash mid-write never leaves a half-arena that parses.

Float32 arenas store each parameter's exact live bytes, so an
arena-backed model is bitwise the in-memory one (pinned by tests).
Int8 arenas store, per quantizable weight, the authoritative int8
tensor (``<name>::q``), its per-channel scales (``<name>::scale``),
**and** the dequantized float32 compute array under the plain name —
consumers map the compute array directly (zero-copy, shared) instead
of re-dequantizing into private pages.
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Union

import numpy as np

from ..encoding.cache import content_digest
from .layers import Module

PathLike = Union[str, Path]

ARENA_MAGIC = b"RPWA"
ARENA_VERSION = 1
ARENA_SUFFIX = ".rpwa"
_ALIGN = 64
_PREAMBLE = struct.Struct("<4sIQ")  # magic, version, header length


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _hash_tensors(tensors: Mapping[str, np.ndarray]) -> str:
    def chunks() -> Iterator[bytes]:
        for name, array in tensors.items():
            yield b"\x1d"
            yield name.encode("utf-8")
            yield repr((array.dtype.str, array.shape)).encode("utf-8")
            yield np.ascontiguousarray(array).tobytes()

    return content_digest(chunks())


def write_arena(
    path: PathLike,
    tensors: Mapping[str, np.ndarray],
    meta: Optional[dict] = None,
) -> Path:
    """Serialize ``tensors`` (name → ndarray, order preserved) to ``path``.

    Atomic: the arena appears complete or not at all.  Returns ``path``.
    """
    path = Path(path)
    table: List[dict] = []
    offset = 0
    arrays: List[np.ndarray] = []
    for name, array in tensors.items():
        array = np.ascontiguousarray(array)
        arrays.append(array)
        offset = _aligned(offset)
        table.append(
            {
                "name": name,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": int(array.nbytes),
            }
        )
        offset += array.nbytes
    header = {
        "content_hash": _hash_tensors(tensors),
        "meta": dict(meta or {}),
        "tensors": table,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    data_start = _aligned(_PREAMBLE.size + len(header_bytes))
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(_PREAMBLE.pack(ARENA_MAGIC, ARENA_VERSION, len(header_bytes)))
        handle.write(header_bytes)
        handle.write(b"\x00" * (data_start - _PREAMBLE.size - len(header_bytes)))
        written = 0
        for entry, array in zip(table, arrays):
            handle.write(b"\x00" * (entry["offset"] - written))
            handle.write(np.ascontiguousarray(array).tobytes())
            written = entry["offset"] + entry["nbytes"]
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


class Arena:
    """Read-only view over one arena file.

    Tensor views share a single ``np.memmap`` (mode ``"r"``): they are
    not writable, and N processes opening the same file share the pages.
    Construction parses only the header — no tensor bytes are touched
    until a view is actually read, so opening is O(header), which is
    what makes evict→reload a remap instead of a deserialize.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        with open(self.path, "rb") as handle:
            preamble = handle.read(_PREAMBLE.size)
            if len(preamble) != _PREAMBLE.size:
                raise ValueError(f"{self.path} is too short to be an arena")
            magic, version, header_len = _PREAMBLE.unpack(preamble)
            if magic != ARENA_MAGIC:
                raise ValueError(f"{self.path} is not a weight arena (bad magic)")
            if version != ARENA_VERSION:
                raise ValueError(
                    f"arena version {version} is not supported "
                    f"(this build reads version {ARENA_VERSION})"
                )
            header_bytes = handle.read(header_len)
            if len(header_bytes) != header_len:
                raise ValueError(f"{self.path} has a truncated arena header")
        header = json.loads(header_bytes.decode("utf-8"))
        self.content_hash: str = header["content_hash"]
        self.meta: dict = header.get("meta", {})
        self._table: Dict[str, dict] = {
            entry["name"]: entry for entry in header["tensors"]
        }
        self._data_start = _aligned(_PREAMBLE.size + header_len)
        self._mm = np.memmap(self.path, mode="r", dtype=np.uint8)
        self._views: Dict[str, np.ndarray] = {}

    @property
    def precision(self) -> str:
        return self.meta.get("precision", "float32")

    def names(self) -> List[str]:
        return list(self._table)

    def __contains__(self, name: str) -> bool:
        return name in self._table

    def __getitem__(self, name: str) -> np.ndarray:
        view = self._views.get(name)
        if view is not None:
            return view
        entry = self._table.get(name)
        if entry is None:
            raise KeyError(f"arena {self.path} has no tensor {name!r}")
        start = self._data_start + entry["offset"]
        raw = self._mm[start : start + entry["nbytes"]]
        view = raw.view(np.dtype(entry["dtype"])).reshape(entry["shape"])
        self._views[name] = view
        return view

    def get(self, name: str) -> Optional[np.ndarray]:
        try:
            return self[name]
        except KeyError:
            return None

    def verify(self) -> bool:
        """Recompute the content hash over every tensor (reads all pages)."""
        return _hash_tensors({name: self[name] for name in self._table}) == (
            self.content_hash
        )


def model_arena_tensors(
    model: Module, precision: str = "float32"
) -> "Dict[str, np.ndarray]":
    """The tensor set an arena stores for ``model`` at ``precision``.

    ``float32``: every named parameter's exact live array.  ``int8``:
    quantizable (Linear) weights become ``<name>::q`` + ``<name>::scale``
    plus the dequantized float32 compute array under the plain name
    (see the module docstring); everything else stays float32.
    """
    from .quant import dequantize_weight, quantizable_weight_names, quantize_weight

    if precision not in ("float32", "int8"):
        raise ValueError(
            f"arena precision must be 'float32' or 'int8': {precision!r}"
        )
    tensors: Dict[str, np.ndarray] = {}
    quantize = quantizable_weight_names(model) if precision == "int8" else set()
    for name, param in sorted(model.named_parameters()):
        data = param.data
        if name in quantize:
            qw = quantize_weight(data)
            tensors[f"{name}::q"] = qw.q
            tensors[f"{name}::scale"] = qw.scale
            tensors[name] = dequantize_weight(qw)
        else:
            tensors[name] = np.ascontiguousarray(data)
    return tensors


def write_model_arena(
    model: Module,
    path: PathLike,
    precision: str = "float32",
    meta: Optional[dict] = None,
) -> Path:
    """Write ``model``'s inference weights as an arena at ``path``."""
    merged = {"precision": precision}
    fingerprint = getattr(model, "fingerprint", None)
    if callable(fingerprint):
        # Provenance: the fingerprint of the weights the arena was built
        # FROM.  An int8 arena's attached model fingerprints differently
        # (its weights are the int8 round-trip), which is exactly the
        # cache-partitioning contract.
        merged["source_fingerprint"] = fingerprint()
    merged.update(meta or {})
    return write_arena(path, model_arena_tensors(model, precision), merged)


def attach_arena(model: Module, arena: Arena) -> None:
    """Point every parameter of ``model`` at its read-only arena view.

    After this, the model's weights live in the arena's shared pages:
    no private copy exists, and inference sessions capture the views
    directly (``InferenceSession._arr`` shares same-dtype arrays).  The
    model must not be trained afterwards — the views are read-only, and
    any in-place optimizer update would raise.  Invalidate-on-replace
    contracts are honored: memoized sessions and (by the caller)
    annotation fingerprints must be dropped, exactly as after
    ``load_state_dict``.
    """
    for name, param in model.named_parameters():
        view = arena.get(name)
        if view is None:
            raise KeyError(
                f"arena {arena.path} is missing tensor {name!r} "
                "(stale arena for a different architecture?)"
            )
        if tuple(view.shape) != tuple(param.data.shape):
            raise ValueError(
                f"arena tensor {name!r} has shape {tuple(view.shape)}, "
                f"model expects {tuple(param.data.shape)}"
            )
        if view.dtype != param.data.dtype:
            raise ValueError(
                f"arena tensor {name!r} has dtype {view.dtype}, "
                f"model expects {param.data.dtype}"
            )
        param.data = view
    # Underscored so Module's attribute walkers never descend into it.
    model._weight_arena = arena
    invalidate = getattr(model, "invalidate_sessions", None)
    if callable(invalidate):
        invalidate()


def model_arena(model: Module) -> Optional[Arena]:
    """The arena ``model``'s weights are mapped from, if any."""
    return getattr(model, "_weight_arena", None)
