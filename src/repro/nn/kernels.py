"""Optimized inference kernels: in-place ops, workspaces, proof-gated fusion.

The autograd path in :mod:`repro.nn.functional` is the *reference*
implementation: its operation sequences define the bytes every other path
must reproduce.  This module provides the serving-speed twins:

* :func:`softmax_`, :func:`layer_norm_`, :func:`gelu_` — the same ufunc
  sequences as the reference kernels, computed in place on caller-owned
  buffers.  A ufunc with ``out=`` produces bitwise-identical values to its
  allocating form, so these are byte-safe by construction; the differential
  harness (``tests/test_kernel_identity.py``) pins that.
* :class:`Workspace` — preallocated scratch buffers reused across batches.
  One workspace lives per inference session (per engine), so steady-state
  serving allocates no large temporaries.
* :func:`matmul_into` and :func:`fused_qkv` — GEMMs that land in workspace
  buffers and the one-GEMM-instead-of-three QKV projection.  BLAS kernel
  selection is shape-dependent and implementation-defined, so neither is
  *assumed* byte-identical: both ship **dark until proven**.  The first
  call per (operation, shape, dtype) computes the reference form too,
  compares bitwise, and records a verdict in the workspace's
  :class:`ProofCache`; only a proven shape uses the optimized form on
  later calls, and a failed proof permanently falls back to the reference
  form for that shape.  This is the ``waste_budget`` discipline applied to
  kernels: the optimization is free to be unsound on some platform, the
  gate keeps the bytes contract regardless.
"""

from __future__ import annotations

import ast
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from .functional import _SQRT_2_OVER_PI


class ProofCache:
    """Bitwise-equivalence verdicts for shape-dependent optimizations.

    ``verdict(key)`` returns ``True`` (proven identical), ``False``
    (disproven — use the reference form), or ``None`` (not yet tried).

    Two kinds of entries share the cache: bitwise proofs (the matmul /
    fused-QKV gates) and the int8 **accuracy gate**'s calibration records
    (:mod:`repro.nn.quant`), which additionally carry the measured max
    drift in ``drifts`` — a disproof there means "drifted past
    tolerance", not "not bitwise".

    Verdicts are serializable (:meth:`to_payload` / :meth:`load_payload`)
    so the serving tier can persist them per model fingerprint: a pool
    worker or a crash-restart then skips the dark-launch double-compute
    (and the int8 calibration pass) for every already-proven key.
    ``dirty`` flips on every new verdict so callers persist only when
    something changed.
    """

    def __init__(self) -> None:
        self._verdicts: Dict[Hashable, bool] = {}
        self.drifts: Dict[Hashable, float] = {}
        self.proofs_run = 0
        self.proofs_failed = 0
        self.dirty = False

    def __len__(self) -> int:
        return len(self._verdicts)

    def verdict(self, key: Hashable) -> Optional[bool]:
        return self._verdicts.get(key)

    def record(
        self, key: Hashable, ok: bool, drift: Optional[float] = None
    ) -> None:
        self.proofs_run += 1
        if not ok:
            self.proofs_failed += 1
        self._verdicts[key] = bool(ok)
        if drift is not None:
            self.drifts[key] = float(drift)
        self.dirty = True

    # -- persistence ---------------------------------------------------------
    # Keys are tuples of strings/ints/shape-tuples; ``repr`` round-trips
    # them exactly and ``ast.literal_eval`` parses only literals, so the
    # payload is JSON-safe without a bespoke key grammar.
    def to_payload(self) -> dict:
        """JSON-serializable snapshot of every verdict and drift record."""
        return {
            "verdicts": {repr(k): v for k, v in self._verdicts.items()},
            "drifts": {repr(k): v for k, v in self.drifts.items()},
        }

    def load_payload(self, payload: dict) -> int:
        """Merge a :meth:`to_payload` snapshot; returns entries loaded.

        Existing in-memory verdicts win (they were measured on THIS
        process/platform); malformed keys are skipped, not fatal — a
        corrupt sidecar degrades to re-proving, never to a crash.
        Loading does not mark the cache dirty and does not count toward
        ``proofs_run`` (nothing was proven here).
        """
        loaded = 0
        for encoded, ok in dict(payload.get("verdicts", {})).items():
            try:
                key = ast.literal_eval(encoded)
            except (ValueError, SyntaxError):
                continue
            if key not in self._verdicts:
                self._verdicts[key] = bool(ok)
                loaded += 1
        for encoded, drift in dict(payload.get("drifts", {})).items():
            try:
                key = ast.literal_eval(encoded)
            except (ValueError, SyntaxError):
                continue
            self.drifts.setdefault(key, float(drift))
        return loaded


class Workspace:
    """Named scratch buffers reused across forward passes.

    Buffers are keyed by (name, shape, dtype): a request for the same name
    with a new shape allocates fresh (the old buffer is dropped), so one
    workspace holds exactly one live buffer per name — sized for the
    current batch geometry.  Engines process one bucket at a time, so
    geometry churn is bounded by the bucket plan, not the request stream.
    """

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}
        self.proofs = ProofCache()

    def take(self, name: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        buf = self._buffers.get(name)
        if buf is None or buf.shape != tuple(shape) or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[name] = buf
        return buf

    @property
    def allocated_bytes(self) -> int:
        return sum(buf.nbytes for buf in self._buffers.values())


def matmul_into(a: np.ndarray, b: np.ndarray, ws: Workspace, name: str) -> np.ndarray:
    """``a @ b`` into a workspace buffer, proof-gated per shape.

    The first call for a given (name, shapes, dtype) computes both
    ``np.matmul(a, b)`` and ``np.matmul(a, b, out=buffer)``, compares
    bitwise, and records the verdict; thereafter proven shapes skip the
    allocating form entirely.  Returns the reference result whenever the
    ``out=`` form is unproven or disproven, so the caller always gets
    reference bytes.
    """
    key = ("matmul", name, a.shape, b.shape, a.dtype.str)
    verdict = ws.proofs.verdict(key)
    if verdict is False:
        return np.matmul(a, b)
    out_shape = np.broadcast_shapes(a.shape[:-2], b.shape[:-2]) + (
        a.shape[-2],
        b.shape[-1],
    )
    out = ws.take(name, out_shape, a.dtype)
    if verdict is True:
        return np.matmul(a, b, out=out)
    reference = np.matmul(a, b)
    got = np.matmul(a, b, out=out)
    ws.proofs.record(key, bool((got == reference).all()))
    return reference


def fused_qkv(
    x: np.ndarray,
    w_q: np.ndarray,
    b_q: np.ndarray,
    w_k: np.ndarray,
    b_k: np.ndarray,
    w_v: np.ndarray,
    b_v: np.ndarray,
    w_qkv: np.ndarray,
    b_qkv: np.ndarray,
    ws: Workspace,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Query/key/value projections, fused into one GEMM when proven safe.

    The reference path (three separate ``x @ W + b``) defines the bytes.
    Fusing changes only which BLAS call produces each output column block;
    whether that is bitwise neutral depends on the BLAS build's blocking
    strategy, so the first call per input shape runs both and compares.
    A proven shape runs one GEMM; anything else runs the reference three.
    """
    d = w_q.shape[1]
    key = ("fused_qkv", x.shape, d, x.dtype.str)
    verdict = ws.proofs.verdict(key)
    if verdict is True:
        qkv = np.matmul(x, w_qkv, out=ws.take("qkv", x.shape[:-1] + (3 * d,), x.dtype))
        qkv += b_qkv
        return qkv[..., :d], qkv[..., d : 2 * d], qkv[..., 2 * d :]
    q = np.matmul(x, w_q) + b_q
    k = np.matmul(x, w_k) + b_k
    v = np.matmul(x, w_v) + b_v
    if verdict is None:
        qkv = np.matmul(x, w_qkv, out=ws.take("qkv", x.shape[:-1] + (3 * d,), x.dtype))
        qkv += b_qkv
        ok = (
            (qkv[..., :d] == q).all()
            and (qkv[..., d : 2 * d] == k).all()
            and (qkv[..., 2 * d :] == v).all()
        )
        ws.proofs.record(key, bool(ok))
    return q, k, v


def softmax_(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """In-place twin of :func:`repro.nn.functional.softmax` (same op order)."""
    x -= x.max(axis=axis, keepdims=True)
    np.exp(x, out=x)
    x /= x.sum(axis=axis, keepdims=True)
    return x


def layer_norm_(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float,
    ws: Workspace,
    scratch: str = "ln",
) -> np.ndarray:
    """In-place twin of :func:`repro.nn.functional.layer_norm`.

    Mutates and returns ``x``; uses one workspace buffer for the squared
    deviations.  Every operation mirrors the reference kernel: mean,
    subtract, square (as ``x * x`` — bitwise equal to the reference's
    ``centered ** 2``, which numpy lowers to a multiply), mean, ``1/sqrt``,
    scale, affine.
    """
    mu = x.mean(axis=-1, keepdims=True)
    np.subtract(x, mu, out=x)  # x = centered
    sq = ws.take(scratch, x.shape, x.dtype)
    np.multiply(x, x, out=sq)
    var = sq.mean(axis=-1, keepdims=True)
    var += eps
    np.sqrt(var, out=var)
    np.divide(1.0, var, out=var)  # var = inv_std
    np.multiply(x, var, out=x)  # x = normalized
    np.multiply(x, gamma, out=x)
    np.add(x, beta, out=x)
    return x


def gelu_(x: np.ndarray, ws: Workspace, scratch: str = "gelu") -> np.ndarray:
    """In-place twin of :func:`repro.nn.functional.gelu` (same op order).

    Mutates and returns ``x``; one workspace buffer carries the cube/tanh
    chain, so the steady state allocates nothing.
    """
    t = ws.take(scratch, x.shape, x.dtype)
    np.multiply(x, x, out=t)  # x^2
    np.multiply(t, x, out=t)  # x^2 * x  (the reference's cube)
    np.multiply(t, 0.044715, out=t)
    np.add(x, t, out=t)  # x + 0.044715 x^3
    np.multiply(t, _SQRT_2_OVER_PI, out=t)
    np.tanh(t, out=t)
    np.add(t, 1.0, out=t)  # 1 + tanh(...)
    np.multiply(x, 0.5, out=x)  # 0.5 x
    np.multiply(x, t, out=x)  # (0.5 x)(1 + tanh(...))
    return x
