"""Optimizers and learning-rate schedules.

The paper fine-tunes with Adam (eps=1e-8), initial learning rate 5e-5 and a
linear decay schedule with no warm-up; both pieces are reproduced here.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimizer interface over a list of parameters."""

    def __init__(self, params: Sequence[Tensor], lr: float) -> None:
        self.params = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, params: Sequence[Tensor], lr: float, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity: Optional[List[np.ndarray]] = None
        if momentum > 0:
            self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            if self._velocity is not None:
                self._velocity[i] = self.momentum * self._velocity[i] + param.grad
                update = self._velocity[i]
            else:
                update = param.grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with the paper's defaults."""

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 5e-5,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        max_grad_norm: Optional[float] = 1.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.max_grad_norm = max_grad_norm
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def _clip_gradients(self) -> None:
        if self.max_grad_norm is None:
            return
        total = 0.0
        for param in self.params:
            if param.grad is not None:
                total += float((param.grad.astype(np.float64) ** 2).sum())
        norm = np.sqrt(total)
        if norm > self.max_grad_norm and norm > 0:
            scale = self.max_grad_norm / norm
            for param in self.params:
                if param.grad is not None:
                    param.grad *= scale

    def step(self) -> None:
        self._clip_gradients()
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for i, param in enumerate(self.params):
            grad = param.grad
            if grad is None:
                continue
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * param.data
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad * grad
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with *decoupled* weight decay (Loshchilov & Hutter).

    Unlike :class:`Adam`'s L2-style ``weight_decay`` (added to the gradient
    before the moment updates), AdamW shrinks the weights directly by
    ``lr * weight_decay`` each step, which is what the Transformers library
    the paper builds on uses for BERT fine-tuning.
    """

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 5e-5,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
        max_grad_norm: Optional[float] = 1.0,
    ) -> None:
        super().__init__(
            params, lr=lr, betas=betas, eps=eps,
            weight_decay=0.0, max_grad_norm=max_grad_norm,
        )
        self.decoupled_weight_decay = weight_decay

    def step(self) -> None:
        if self.decoupled_weight_decay > 0:
            decay = self.lr * self.decoupled_weight_decay
            for param in self.params:
                if param.grad is not None:
                    param.data -= decay * param.data
        super().step()


class LinearDecayScheduler:
    """Linearly decays the optimizer learning rate to zero (no warm-up).

    Matches the schedule in Section 5.3 of the paper.
    """

    def __init__(self, optimizer: Optimizer, total_steps: int) -> None:
        if total_steps <= 0:
            raise ValueError(f"total_steps must be positive: {total_steps}")
        self.optimizer = optimizer
        self.total_steps = total_steps
        self.base_lr = optimizer.lr
        self._step_count = 0

    def step(self) -> None:
        self._step_count += 1
        fraction = max(0.0, 1.0 - self._step_count / self.total_steps)
        self.optimizer.lr = self.base_lr * fraction

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr


class WarmupLinearScheduler:
    """Linear warm-up followed by linear decay to zero.

    The paper fine-tunes without warm-up; this scheduler exists for the
    pre-training phase and for users fine-tuning on larger corpora, where a
    short warm-up stabilises the first Adam steps.
    """

    def __init__(
        self, optimizer: Optimizer, total_steps: int, warmup_steps: int
    ) -> None:
        if total_steps <= 0:
            raise ValueError(f"total_steps must be positive: {total_steps}")
        if not 0 <= warmup_steps < total_steps:
            raise ValueError(
                f"warmup_steps must be in [0, total_steps): {warmup_steps}"
            )
        self.optimizer = optimizer
        self.total_steps = total_steps
        self.warmup_steps = warmup_steps
        self.base_lr = optimizer.lr
        self._step_count = 0
        if warmup_steps > 0:
            self.optimizer.lr = 0.0

    def step(self) -> None:
        self._step_count += 1
        if self._step_count <= self.warmup_steps:
            fraction = self._step_count / max(1, self.warmup_steps)
        else:
            remaining = self.total_steps - self.warmup_steps
            done = self._step_count - self.warmup_steps
            fraction = max(0.0, 1.0 - done / remaining)
        self.optimizer.lr = self.base_lr * fraction

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr


class CosineDecayScheduler:
    """Cosine annealing from the base learning rate to ``min_lr``."""

    def __init__(
        self, optimizer: Optimizer, total_steps: int, min_lr: float = 0.0
    ) -> None:
        if total_steps <= 0:
            raise ValueError(f"total_steps must be positive: {total_steps}")
        if min_lr < 0:
            raise ValueError(f"min_lr must be non-negative: {min_lr}")
        self.optimizer = optimizer
        self.total_steps = total_steps
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self._step_count = 0

    def step(self) -> None:
        self._step_count += 1
        progress = min(1.0, self._step_count / self.total_steps)
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * cosine

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr
