"""Numpy-based neural network substrate: autograd, layers, Transformer, optim.

This subpackage replaces PyTorch + HuggingFace transformers in the original
DODUO implementation (see DESIGN.md, substitution table).
"""

from . import functional
from .layers import MLP, Dropout, Embedding, LayerNorm, Linear, Module, deferred_init
from .optim import (
    Adam,
    AdamW,
    CosineDecayScheduler,
    LinearDecayScheduler,
    Optimizer,
    SGD,
    WarmupLinearScheduler,
)
from .serialization import copy_parameters, load_checkpoint, save_checkpoint
from .tensor import Tensor, concatenate, stack, where
from .transformer import (
    MultiHeadSelfAttention,
    TransformerBlock,
    TransformerConfig,
    TransformerEncoder,
)

__all__ = [
    "Adam",
    "AdamW",
    "CosineDecayScheduler",
    "Dropout",
    "Embedding",
    "LayerNorm",
    "Linear",
    "LinearDecayScheduler",
    "MLP",
    "Module",
    "MultiHeadSelfAttention",
    "Optimizer",
    "SGD",
    "Tensor",
    "TransformerBlock",
    "TransformerConfig",
    "TransformerEncoder",
    "WarmupLinearScheduler",
    "concatenate",
    "copy_parameters",
    "deferred_init",
    "functional",
    "load_checkpoint",
    "save_checkpoint",
    "stack",
    "where",
]
