"""Neural-network modules built on the autograd tensor.

The :class:`Module` base class provides parameter discovery (for optimizers
and checkpointing) by walking instance attributes, mirroring the familiar
PyTorch convention while staying pure numpy.
"""

from __future__ import annotations

import contextlib
import mmap
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from .tensor import Tensor

#: When True, Linear/Embedding allocate their weights as untouched zeros
#: instead of drawing random initial values.  See :func:`deferred_init`.
_DEFER_INIT = False


@contextlib.contextmanager
def deferred_init():
    """Skip random weight initialization inside the context.

    For load paths that overwrite every parameter anyway (checkpoint
    load, arena attach), random init writes the full weight payload once
    just to throw it away — which costs startup time and, in a forked
    serving worker, permanently dirties that many copy-on-write heap
    pages.  Deferred parameters are ``np.zeros`` allocations: backed by
    untouched zero pages, they cost no physical memory until written,
    and none at all when an arena view replaces them.

    Strictly for full-overwrite loads: a deferred module that is never
    loaded has all-zero weights, and the module's RNG stream is not
    advanced, so partially-initialized training setups must not use it.
    """
    global _DEFER_INIT
    previous = _DEFER_INIT
    _DEFER_INIT = True
    try:
        yield
    finally:
        _DEFER_INIT = previous


def _untouched_zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """A zero float32 array on fresh anonymous pages.

    ``np.zeros`` may recycle already-dirtied heap pages (whose memset
    then copies them in a forked worker); an explicit anonymous mmap is
    backed by untouched zero pages that cost no physical memory until —
    unless — they are written.
    """
    size = max(1, int(np.prod(shape))) * np.dtype(np.float32).itemsize
    return np.frombuffer(mmap.mmap(-1, size), dtype=np.float32, count=int(
        np.prod(shape)
    )).reshape(shape)


class Module:
    """Base class for layers: tracks parameters and training mode."""

    def __init__(self) -> None:
        self.training = True

    # -- parameter discovery -------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for attr, value in vars(self).items():
            if attr.startswith("_") or attr == "training":
                continue
            name = f"{prefix}{attr}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{i}.")
                    elif isinstance(item, Tensor) and item.requires_grad:
                        yield f"{name}.{i}", item

    def parameters(self) -> List[Tensor]:
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        return sum(param.size for param in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- train / eval mode ---------------------------------------------------
    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        # Mode only ever changes through train()/eval(), which set the
        # whole subtree — so a node that already has the requested flag
        # roots a consistent subtree and the walk can stop.  Serving
        # calls eval() before every forward; without this short-circuit
        # that is a full module-tree walk per request.
        if self.training is training:
            return
        self.training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.shape}, got {value.shape}"
                )
            param.data = value.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine layer ``y = x W + b`` with Xavier-uniform initialization."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        if _DEFER_INIT:
            weight = _untouched_zeros((in_features, out_features))
        else:
            bound = np.sqrt(6.0 / (in_features + out_features))
            weight = rng.uniform(
                -bound, bound, size=(in_features, out_features)
            ).astype(np.float32)
        self.weight = Tensor(weight, requires_grad=True)
        if bias:
            self.bias: Optional[Tensor] = Tensor(
                np.zeros(out_features, dtype=np.float32), requires_grad=True
            )
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator,
        scale: float = 0.02,
    ) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        if _DEFER_INIT:
            weight = _untouched_zeros((num_embeddings, embedding_dim))
        else:
            weight = (
                rng.standard_normal((num_embeddings, embedding_dim)) * scale
            ).astype(np.float32)
        self.weight = Tensor(weight, requires_grad=True)

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        return F.embedding_lookup(self.weight, indices)


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, normalized_dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.gamma = Tensor(np.ones(normalized_dim, dtype=np.float32), requires_grad=True)
        self.beta = Tensor(np.zeros(normalized_dim, dtype=np.float32), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.gamma, self.beta, eps=self.eps)


class Dropout(Module):
    """Inverted dropout driven by an explicit generator for determinism."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1): {rate}")
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self._rng, training=self.training)


class MLP(Module):
    """Two-layer feed-forward block with a configurable activation."""

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        out_features: int,
        rng: np.random.Generator,
        activation: str = "gelu",
    ) -> None:
        super().__init__()
        self.fc1 = Linear(in_features, hidden_features, rng)
        self.fc2 = Linear(hidden_features, out_features, rng)
        if activation not in ("gelu", "relu", "tanh"):
            raise ValueError(f"unsupported activation: {activation}")
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.fc1(x)
        if self.activation == "gelu":
            hidden = F.gelu(hidden)
        elif self.activation == "relu":
            hidden = hidden.relu()
        else:
            hidden = hidden.tanh()
        return self.fc2(hidden)
