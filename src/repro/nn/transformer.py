"""A BERT-style Transformer encoder implemented on the numpy autograd engine.

The encoder mirrors the architecture the paper fine-tunes (multi-head
self-attention, GELU feed-forward, post-norm residual blocks, learned
position embeddings) at a configurable, CPU-friendly scale.  Attention
supports two masking mechanisms:

* a padding keep-mask ``(B, S)`` — standard BERT behaviour, and
* an optional full visibility matrix ``(B, S, S)`` — used by the TURL
  baseline, whose defining difference from DODUO is the removal of
  cross-column attention edges (Section 5.4 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from . import functional as F
from .layers import Dropout, Embedding, LayerNorm, Linear, Module
from .tensor import Tensor


@dataclass(frozen=True)
class TransformerConfig:
    """Hyper-parameters of the encoder.

    The defaults are a "mini-BERT" sized for CPU fine-tuning; the paper used
    BERT-base (12 layers, 768 dims), which is the same architecture scaled up.
    """

    vocab_size: int = 2048
    hidden_dim: int = 64
    num_layers: int = 2
    num_heads: int = 4
    ffn_dim: int = 128
    max_position: int = 256
    num_segments: int = 2
    dropout: float = 0.1
    layer_norm_eps: float = 1e-5

    def __post_init__(self) -> None:
        if self.hidden_dim % self.num_heads != 0:
            raise ValueError(
                f"hidden_dim ({self.hidden_dim}) must be divisible by "
                f"num_heads ({self.num_heads})"
            )


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with optional additive bias masks."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.num_heads = config.num_heads
        self.head_dim = config.hidden_dim // config.num_heads
        self.scale = 1.0 / np.sqrt(self.head_dim)
        self.query = Linear(config.hidden_dim, config.hidden_dim, rng)
        self.key = Linear(config.hidden_dim, config.hidden_dim, rng)
        self.value = Linear(config.hidden_dim, config.hidden_dim, rng)
        self.output = Linear(config.hidden_dim, config.hidden_dim, rng)
        self._last_attention: Optional[np.ndarray] = None

    def forward(self, x: Tensor, attention_bias: Optional[np.ndarray] = None) -> Tensor:
        batch, seq, dim = x.shape
        heads, head_dim = self.num_heads, self.head_dim

        def split_heads(t: Tensor) -> Tensor:
            return t.reshape(batch, seq, heads, head_dim).transpose(0, 2, 1, 3)

        q = split_heads(self.query(x))
        k = split_heads(self.key(x))
        v = split_heads(self.value(x))

        scores = (q @ k.swapaxes(-1, -2)) * self.scale
        if attention_bias is not None:
            scores = scores + Tensor(attention_bias)
        weights = F.softmax(scores, axis=-1)
        self._last_attention = weights.data
        context = weights @ v
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, dim)
        return self.output(context)

    @property
    def last_attention(self) -> Optional[np.ndarray]:
        """Attention probabilities of the most recent forward pass
        with shape ``(B, heads, S, S)``; used by the attention analysis."""
        return self._last_attention

    def packed_qkv(self, dtype=None):
        """Concatenated projection weights for the fused QKV GEMM.

        Returns a ``(d, 3d)`` weight and a ``(3d,)`` bias whose column
        blocks are ordered query, key, value — the layout
        :func:`repro.nn.kernels.fused_qkv` slices.  The arrays are fresh
        copies; callers that cache them (inference sessions) must rebuild
        when the underlying projections change.
        """
        weights = [self.query.weight.data, self.key.weight.data, self.value.weight.data]
        biases = [self.query.bias.data, self.key.bias.data, self.value.bias.data]
        if dtype is not None:
            weights = [w.astype(dtype, copy=False) for w in weights]
            biases = [b.astype(dtype, copy=False) for b in biases]
        return np.concatenate(weights, axis=1), np.concatenate(biases)


class TransformerBlock(Module):
    """Post-norm residual block: attention then GELU feed-forward."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.attention = MultiHeadSelfAttention(config, rng)
        self.attention_norm = LayerNorm(config.hidden_dim, eps=config.layer_norm_eps)
        self.ffn_in = Linear(config.hidden_dim, config.ffn_dim, rng)
        self.ffn_out = Linear(config.ffn_dim, config.hidden_dim, rng)
        self.ffn_norm = LayerNorm(config.hidden_dim, eps=config.layer_norm_eps)
        self.dropout = Dropout(config.dropout, rng)

    def forward(self, x: Tensor, attention_bias: Optional[np.ndarray] = None) -> Tensor:
        attended = self.attention(x, attention_bias=attention_bias)
        x = self.attention_norm(x + self.dropout(attended))
        hidden = F.gelu(self.ffn_in(x))
        x = self.ffn_norm(x + self.dropout(self.ffn_out(hidden)))
        return x


class TransformerEncoder(Module):
    """Token + position + segment embeddings followed by Transformer blocks.

    ``forward`` accepts either a boolean padding mask ``(B, S)`` or a full
    visibility matrix ``(B, S, S)``; the latter takes precedence when given.
    """

    def __init__(self, config: TransformerConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.hidden_dim, rng)
        self.position_embedding = Embedding(config.max_position, config.hidden_dim, rng)
        self.segment_embedding = Embedding(config.num_segments, config.hidden_dim, rng)
        self.embedding_norm = LayerNorm(config.hidden_dim, eps=config.layer_norm_eps)
        self.embedding_dropout = Dropout(config.dropout, rng)
        self.blocks = [TransformerBlock(config, rng) for _ in range(config.num_layers)]
        self._layer_outputs: List[Tensor] = []

    def forward(
        self,
        token_ids: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
        segment_ids: Optional[np.ndarray] = None,
        visibility: Optional[np.ndarray] = None,
        extra_embedding: Optional[Tensor] = None,
    ) -> Tensor:
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 2:
            raise ValueError(f"token_ids must be (batch, seq), got {token_ids.shape}")
        batch, seq = token_ids.shape
        if seq > self.config.max_position:
            raise ValueError(
                f"sequence length {seq} exceeds max_position {self.config.max_position}"
            )

        positions = np.broadcast_to(np.arange(seq), (batch, seq))
        if segment_ids is None:
            segment_ids = np.zeros((batch, seq), dtype=np.int64)

        embedded = (
            self.token_embedding(token_ids)
            + self.position_embedding(positions)
            + self.segment_embedding(segment_ids)
        )
        if extra_embedding is not None:
            # External input features (e.g. DODUO's numeric magnitude
            # embeddings) live outside the encoder so pre-trained encoder
            # checkpoints remain loadable; they join the sum here.
            if extra_embedding.shape != embedded.shape:
                raise ValueError(
                    f"extra_embedding shape {extra_embedding.shape} does not "
                    f"match embeddings {embedded.shape}"
                )
            embedded = embedded + extra_embedding
        hidden = self.embedding_dropout(self.embedding_norm(embedded))

        if visibility is not None:
            bias = F.visibility_bias(visibility)
            if attention_mask is not None:
                bias = bias + F.attention_bias_from_mask(attention_mask)
        elif attention_mask is not None:
            bias = F.attention_bias_from_mask(attention_mask)
        else:
            bias = None

        self._layer_outputs: List[Tensor] = []
        for block in self.blocks:
            hidden = block(hidden, attention_bias=bias)
            self._layer_outputs.append(hidden)
        return hidden

    @property
    def layer_outputs(self) -> List[Tensor]:
        """Hidden states after each block from the most recent forward.

        Index ``-1`` is the final output; earlier layers carry more
        transferable (less task-collapsed) representations, which the
        out-of-domain clustering case study exploits.
        """
        return list(self._layer_outputs)

    def attention_maps(self) -> List[np.ndarray]:
        """Per-layer attention probabilities from the most recent forward."""
        maps = []
        for block in self.blocks:
            attn = block.attention.last_attention
            if attn is not None:
                maps.append(attn)
        return maps
