"""Saving and loading model weights as ``.npz`` checkpoints."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .layers import Module


def save_checkpoint(module: Module, path: str | os.PathLike) -> None:
    """Serialize a module's parameters to a compressed ``.npz`` file."""
    state = module.state_dict()
    np.savez_compressed(path, **state)


def load_checkpoint(module: Module, path: str | os.PathLike) -> None:
    """Load parameters saved by :func:`save_checkpoint` into ``module``."""
    with np.load(path) as data:
        state: Dict[str, np.ndarray] = {key: data[key] for key in data.files}
    module.load_state_dict(state)


def copy_parameters(source: Module, target: Module) -> None:
    """Copy parameters between modules with identical structure.

    Used to initialize a fine-tuning model from pre-trained encoder weights.
    """
    target.load_state_dict(source.state_dict())
