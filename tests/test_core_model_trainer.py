"""Tests for the DODUO model, multi-task trainer, and annotator API."""

import numpy as np
import pytest

from repro.core import (
    Doduo,
    DoduoConfig,
    DoduoModel,
    DoduoTrainer,
    SerializerConfig,
    TableSerializer,
)
from repro.core.trainer import RELATION_TASK, TYPE_TASK
from repro.datasets import generate_viznet_dataset, generate_wikitable_dataset, split_dataset
from repro.nn import TransformerConfig
from repro.text import train_wordpiece

from helpers import rng


def small_encoder_config(vocab_size):
    return TransformerConfig(
        vocab_size=vocab_size,
        hidden_dim=32,
        num_layers=2,
        num_heads=2,
        ffn_dim=64,
        max_position=128,
        num_segments=8,
        dropout=0.0,
    )


@pytest.fixture(scope="module")
def wikitable():
    return generate_wikitable_dataset(num_tables=40, seed=7, max_rows=5)


@pytest.fixture(scope="module")
def viznet():
    return generate_viznet_dataset(num_tables=40, seed=11)


@pytest.fixture(scope="module")
def tokenizer(wikitable, viznet):
    corpus = wikitable.all_cell_text() + viznet.all_cell_text()
    return train_wordpiece(corpus, vocab_size=1200)


class TestDoduoModel:
    def test_type_logits_shape(self, wikitable, tokenizer):
        config = small_encoder_config(tokenizer.vocab_size)
        model = DoduoModel(config, num_types=10, num_relations=5, rng=rng(0))
        serializer = TableSerializer(tokenizer, SerializerConfig())
        encoded = [serializer.serialize_table(t) for t in wikitable.tables[:3]]
        total_cols = sum(e.num_columns for e in encoded)
        logits = model.type_logits(encoded)
        assert logits.shape == (total_cols, 10)

    def test_relation_logits_shape(self, wikitable, tokenizer):
        config = small_encoder_config(tokenizer.vocab_size)
        model = DoduoModel(config, num_types=10, num_relations=5, rng=rng(0))
        serializer = TableSerializer(tokenizer, SerializerConfig())
        table = next(t for t in wikitable.tables if t.num_columns >= 3)
        encoded = [serializer.serialize_table(table)]
        logits = model.relation_logits(encoded, [(0, 0, 1), (0, 0, 2)])
        assert logits.shape == (2, 5)

    def test_no_relation_head_raises(self, wikitable, tokenizer):
        config = small_encoder_config(tokenizer.vocab_size)
        model = DoduoModel(config, num_types=10, num_relations=0, rng=rng(0))
        serializer = TableSerializer(tokenizer, SerializerConfig())
        encoded = [serializer.serialize_table(wikitable.tables[0])]
        with pytest.raises(RuntimeError):
            model.relation_logits(encoded, [(0, 0, 1)])

    def test_predict_probs_normalized(self, viznet, tokenizer):
        config = small_encoder_config(tokenizer.vocab_size)
        model = DoduoModel(config, num_types=7, num_relations=0, rng=rng(0))
        serializer = TableSerializer(tokenizer, SerializerConfig())
        encoded = [serializer.serialize_table(viznet.tables[0])]
        probs = model.predict_type_probs(encoded, multi_label=False)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-5)
        probs_ml = model.predict_type_probs(encoded, multi_label=True)
        assert ((probs_ml >= 0) & (probs_ml <= 1)).all()

    def test_column_embeddings_shape(self, wikitable, tokenizer):
        config = small_encoder_config(tokenizer.vocab_size)
        model = DoduoModel(config, num_types=4, num_relations=0, rng=rng(0))
        serializer = TableSerializer(tokenizer, SerializerConfig())
        table = wikitable.tables[0]
        encoded = [serializer.serialize_table(table)]
        emb = model.column_embeddings(encoded)
        assert emb.shape == (table.num_columns, config.hidden_dim)

    def test_layer_selection(self, wikitable, tokenizer):
        config = small_encoder_config(tokenizer.vocab_size)
        model = DoduoModel(config, 4, 0, rng(0))
        model.eval()
        serializer = TableSerializer(tokenizer, SerializerConfig())
        encoded = [serializer.serialize_table(wikitable.tables[0])]
        final = model.column_embeddings(encoded, layer=-1).data
        first = model.column_embeddings(encoded, layer=0).data
        assert final.shape == first.shape
        assert not np.allclose(final, first)
        # layer=-1 and the explicit last index agree
        last = model.column_embeddings(encoded, layer=config.num_layers - 1).data
        np.testing.assert_allclose(final, last)

    def test_encoder_layer_outputs_collected(self, wikitable, tokenizer):
        config = small_encoder_config(tokenizer.vocab_size)
        model = DoduoModel(config, 4, 0, rng(0))
        model.eval()
        serializer = TableSerializer(tokenizer, SerializerConfig())
        model.column_embeddings([serializer.serialize_table(wikitable.tables[0])])
        outputs = model.encoder.layer_outputs
        assert len(outputs) == config.num_layers
        np.testing.assert_allclose(outputs[-1].data, outputs[-1].data)

    def test_segment_flag_changes_output(self, wikitable, tokenizer):
        config = small_encoder_config(tokenizer.vocab_size)
        with_segments = DoduoModel(config, 4, 0, rng(0), use_column_segments=True)
        without = DoduoModel(config, 4, 0, rng(0), use_column_segments=False)
        without.load_state_dict(with_segments.state_dict())
        with_segments.eval(); without.eval()
        serializer = TableSerializer(tokenizer, SerializerConfig())
        encoded = [serializer.serialize_table(wikitable.tables[0])]
        a = with_segments.column_embeddings(encoded).data
        b = without.column_embeddings(encoded).data
        assert not np.allclose(a, b)

    def test_visibility_flag_changes_output(self, wikitable, tokenizer):
        config = small_encoder_config(tokenizer.vocab_size)
        full = DoduoModel(config, 4, 0, rng(0), use_visibility_matrix=False)
        restricted = DoduoModel(config, 4, 0, rng(0), use_visibility_matrix=True)
        restricted.load_state_dict(full.state_dict())
        full.eval(); restricted.eval()
        serializer = TableSerializer(tokenizer, SerializerConfig())
        encoded = [serializer.serialize_table(wikitable.tables[0])]
        a = full.column_embeddings(encoded).data
        b = restricted.column_embeddings(encoded).data
        assert not np.allclose(a, b)


class TestTrainerConfig:
    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            DoduoConfig(tasks=("type", "bogus"))

    def test_negative_patience_rejected(self):
        with pytest.raises(ValueError, match="patience"):
            DoduoConfig(early_stopping_patience=-1)

    def test_invalid_value_order_rejected_at_trainer_build(self, wikitable, tokenizer):
        config = DoduoConfig(value_order="tail")
        with pytest.raises(ValueError, match="value_order"):
            DoduoTrainer(
                wikitable, tokenizer,
                small_encoder_config(tokenizer.vocab_size), config,
            )

    def test_distinct_value_order_trains(self, wikitable, tokenizer):
        config = DoduoConfig(tasks=(TYPE_TASK,), epochs=1, batch_size=8,
                             value_order="distinct", keep_best_checkpoint=False)
        trainer = DoduoTrainer(
            wikitable, tokenizer, small_encoder_config(tokenizer.vocab_size), config
        )
        history = trainer.train()
        assert len(history.task_losses[TYPE_TASK]) == 1


class TestTypeScores:
    def test_scores_cover_vocabulary(self, shared_tiny_annotator):
        table = shared_tiny_annotator.trainer.dataset.tables[0]
        result = shared_tiny_annotator.annotate(table, with_embeddings=False)
        vocab = set(shared_tiny_annotator.trainer.dataset.type_vocab)
        assert len(result.type_scores) == table.num_columns
        for scores in result.type_scores:
            assert set(scores) == vocab
            assert all(0.0 <= v <= 1.0 for v in scores.values())

    def test_top_types_ranked(self, shared_tiny_annotator):
        table = shared_tiny_annotator.trainer.dataset.tables[0]
        result = shared_tiny_annotator.annotate(table, with_embeddings=False)
        top = result.top_types(0, k=3)
        assert len(top) == 3
        assert top[0][1] >= top[1][1] >= top[2][1]

    def test_argmax_score_matches_prediction(self, shared_tiny_annotator):
        """The highest-scoring type must be among the predicted names
        (multi-label prediction always keeps at least the top label)."""
        table = shared_tiny_annotator.trainer.dataset.tables[2]
        result = shared_tiny_annotator.annotate(table, with_embeddings=False)
        for c in range(table.num_columns):
            best = result.top_types(c, k=1)[0][0]
            assert best in result.coltypes[c]


class TestAnnotateMany:
    def test_matches_individual_annotation(self, shared_tiny_annotator):
        tables = shared_tiny_annotator.trainer.dataset.tables[:3]
        batch = shared_tiny_annotator.annotate_many(tables, with_embeddings=False)
        assert len(batch) == 3
        for table, result in zip(tables, batch):
            single = shared_tiny_annotator.annotate(table, with_embeddings=False)
            assert result.coltypes == single.coltypes
            assert result.colrels == single.colrels


class TestTrainerEmbeddingOptions:
    @pytest.fixture(scope="class")
    def quick_trainer(self, wikitable, tokenizer):
        config = DoduoConfig(tasks=(TYPE_TASK,), epochs=1, batch_size=8,
                             keep_best_checkpoint=False)
        trainer = DoduoTrainer(
            wikitable, tokenizer, small_encoder_config(tokenizer.vocab_size), config
        )
        trainer.train()
        return trainer

    def test_wider_budget_changes_embeddings(self, quick_trainer, wikitable):
        table = wikitable.tables[0]
        narrow = quick_trainer.column_embeddings(table, max_tokens_per_column=4)
        wide = quick_trainer.column_embeddings(table, max_tokens_per_column=32)
        assert narrow.shape == wide.shape
        assert not np.allclose(narrow, wide)

    def test_default_budget_matches_training_serializer(self, quick_trainer, wikitable):
        table = wikitable.tables[0]
        default = quick_trainer.column_embeddings(table)
        explicit = quick_trainer.column_embeddings(
            table,
            max_tokens_per_column=quick_trainer.config.max_tokens_per_column,
        )
        np.testing.assert_allclose(default, explicit)

    def test_layer_option_passthrough(self, quick_trainer, wikitable):
        table = wikitable.tables[0]
        final = quick_trainer.column_embeddings(table, layer=-1)
        early = quick_trainer.column_embeddings(table, layer=0)
        assert not np.allclose(final, early)


class TestShuffleAugmentation:
    def test_trains_and_reduces_loss(self, wikitable, tokenizer):
        config = DoduoConfig(
            epochs=6, batch_size=8, learning_rate=2e-3,
            augment_column_shuffle=True, keep_best_checkpoint=False,
        )
        trainer = DoduoTrainer(
            wikitable, tokenizer, small_encoder_config(tokenizer.vocab_size), config
        )
        history = trainer.train()
        for task in (TYPE_TASK, RELATION_TASK):
            losses = history.task_losses[task]
            assert losses[-1] < losses[0]

    def test_deterministic_under_seed(self, wikitable, tokenizer):
        def run():
            config = DoduoConfig(
                tasks=(TYPE_TASK,), epochs=3, batch_size=8, seed=5,
                augment_column_shuffle=True, keep_best_checkpoint=False,
            )
            trainer = DoduoTrainer(
                wikitable, tokenizer,
                small_encoder_config(tokenizer.vocab_size), config,
            )
            trainer.train()
            return trainer.history.task_losses[TYPE_TASK]

        assert run() == run()


class TestEarlyStopping:
    def test_stops_before_epoch_budget(self, wikitable, tokenizer):
        """With patience=1 and a tiny learning rate, validation F1 plateaus
        immediately and training must stop well before 30 epochs."""
        splits_train = wikitable.subset(range(0, 20), name="train")
        splits_valid = wikitable.subset(range(20, 30), name="valid")
        config = DoduoConfig(
            tasks=(TYPE_TASK,), epochs=30, batch_size=8,
            learning_rate=1e-9, early_stopping_patience=1,
        )
        trainer = DoduoTrainer(
            splits_train, tokenizer,
            small_encoder_config(tokenizer.vocab_size), config,
        )
        history = trainer.train(valid_dataset=splits_valid)
        assert history.stopped_early
        assert len(history.task_losses[TYPE_TASK]) < 30

    def test_disabled_by_default(self, wikitable, tokenizer):
        splits_train = wikitable.subset(range(0, 12), name="train")
        splits_valid = wikitable.subset(range(12, 16), name="valid")
        config = DoduoConfig(tasks=(TYPE_TASK,), epochs=3, batch_size=8,
                             learning_rate=1e-9)
        trainer = DoduoTrainer(
            splits_train, tokenizer,
            small_encoder_config(tokenizer.vocab_size), config,
        )
        history = trainer.train(valid_dataset=splits_valid)
        assert not history.stopped_early
        assert len(history.task_losses[TYPE_TASK]) == 3


class TestTrainerWikiTable:
    @pytest.fixture(scope="class")
    def trained(self, wikitable, tokenizer):
        config = DoduoConfig(epochs=20, batch_size=8, learning_rate=2e-3, seed=0,
                             keep_best_checkpoint=False)
        trainer = DoduoTrainer(
            wikitable, tokenizer, small_encoder_config(tokenizer.vocab_size), config
        )
        trainer.train()
        return trainer

    def test_losses_recorded_and_decreasing(self, trained):
        for task in (TYPE_TASK, RELATION_TASK):
            losses = trained.history.task_losses[task]
            assert len(losses) == 20
            assert losses[-1] < losses[0]

    def test_predict_types_multilabel_format(self, trained, wikitable):
        predictions = trained.predict_types(wikitable.tables[:3])
        for table, pred in zip(wikitable.tables[:3], predictions):
            assert pred.shape == (table.num_columns, wikitable.num_types)
            assert pred.dtype == bool
            assert pred.any(axis=-1).all(), "at least one label per column"

    def test_predict_relations_format(self, trained, wikitable):
        predictions = trained.predict_relations(wikitable.tables[:3])
        for table, pred in zip(wikitable.tables[:3], predictions):
            assert set(pred) == set(table.relation_labels)

    def test_evaluate_keys(self, trained, wikitable):
        scores = trained.evaluate(wikitable.subset(range(5)))
        assert set(scores) == {TYPE_TASK, RELATION_TASK}
        for prf in scores.values():
            assert 0.0 <= prf.f1 <= 1.0

    def test_training_improves_over_untrained(self, trained, wikitable, tokenizer):
        untrained = DoduoTrainer(
            wikitable,
            tokenizer,
            small_encoder_config(tokenizer.vocab_size),
            DoduoConfig(epochs=1, seed=1, keep_best_checkpoint=False),
        )
        test = wikitable.subset(range(10))
        assert trained.evaluate(test)[TYPE_TASK].f1 > untrained.evaluate(test)[TYPE_TASK].f1

    def test_column_embeddings(self, trained, wikitable):
        emb = trained.column_embeddings(wikitable.tables[0])
        assert emb.shape[0] == wikitable.tables[0].num_columns


class TestTrainerSingleColumn:
    def test_single_column_mode_runs(self, viznet, tokenizer):
        config = DoduoConfig(
            tasks=(TYPE_TASK,), multi_label=False, single_column=True,
            epochs=2, batch_size=8, keep_best_checkpoint=False,
        )
        trainer = DoduoTrainer(
            viznet, tokenizer, small_encoder_config(tokenizer.vocab_size), config
        )
        trainer.train()
        predictions = trainer.predict_types(viznet.tables[:2])
        for table, pred in zip(viznet.tables[:2], predictions):
            assert pred.shape == (table.num_columns,)

    def test_single_column_relations(self, wikitable, tokenizer):
        config = DoduoConfig(single_column=True, epochs=1, batch_size=8,
                             keep_best_checkpoint=False)
        trainer = DoduoTrainer(
            wikitable, tokenizer, small_encoder_config(tokenizer.vocab_size), config
        )
        trainer.train()
        predictions = trainer.predict_relations(wikitable.tables[:2])
        assert len(predictions) == 2


class TestCheckpointSelection:
    def test_best_checkpoint_kept(self, wikitable, tokenizer):
        splits = split_dataset(wikitable, seed=0)
        config = DoduoConfig(tasks=(TYPE_TASK,), epochs=3, batch_size=8, seed=0)
        trainer = DoduoTrainer(
            splits.train, tokenizer, small_encoder_config(tokenizer.vocab_size), config
        )
        history = trainer.train(valid_dataset=splits.valid)
        assert len(history.valid_f1) == 3
        assert history.best_epoch == int(np.argmax(history.valid_f1))


class TestAnnotator:
    @pytest.fixture(scope="class")
    def annotator(self, wikitable, tokenizer):
        config = DoduoConfig(epochs=5, batch_size=8, learning_rate=2e-3,
                             keep_best_checkpoint=False)
        trainer = DoduoTrainer(
            wikitable, tokenizer, small_encoder_config(tokenizer.vocab_size), config
        )
        trainer.train()
        return Doduo(trainer)

    def test_annotate_returns_names(self, annotator, wikitable):
        table = wikitable.tables[0]
        result = annotator.annotate(table)
        assert len(result.coltypes) == table.num_columns
        vocab = set(wikitable.type_vocab)
        for names in result.coltypes:
            assert names and set(names) <= vocab
        assert result.colemb.shape == (table.num_columns, 32)

    def test_annotate_relations_named(self, annotator, wikitable):
        table = wikitable.tables[0]
        result = annotator.annotate(table)
        rel_vocab = set(wikitable.relation_vocab)
        for pair, names in result.colrels.items():
            assert set(names) <= rel_vocab

    def test_annotate_dataframe(self, annotator):
        result = annotator.annotate_dataframe(
            [["happy feet", "george miller"], ["cars", "john lasseter"]],
            headers=["film", "director"],
        )
        assert len(result.coltypes) == 2

    def test_annotate_dataframe_validation(self, annotator):
        with pytest.raises(ValueError):
            annotator.annotate_dataframe([])
        with pytest.raises(ValueError):
            annotator.annotate_dataframe([["a", "b"], ["c"]])

    def test_annotate_without_embeddings(self, annotator, wikitable):
        result = annotator.annotate(wikitable.tables[0], with_embeddings=False)
        assert result.colemb is None
