"""Column-level content addressing (repro.serving.colcache + engine wiring).

The contract under test:

* a column seen in *any* prior table (any position, any neighbours) skips
  its encoder pass in single-column mode, and the annotation bytes are
  identical to an uncached engine's;
* duplicate columns inside one batch encode once (in-batch dedup by
  content fingerprint);
* entries are keyed by model fingerprint × content hash × padded width —
  weight updates and dtype switches orphan stale states instead of
  serving them;
* the optional disk tier round-trips states byte-exactly and warms a
  fresh process (a second ColumnCache over the same directory);
* table-wise engines never construct the cache (cross-column attention
  makes per-column states context-dependent);
* cold vs warm equivalence holds through the gateway path, and the
  gateway's stats snapshot reports ``column_hit_rate``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DoduoConfig, DoduoTrainer
from repro.datasets import Column, Table, generate_wikitable_dataset
from repro.nn import TransformerConfig
from repro.serving import (
    AnnotationEngine,
    AnnotationOptions,
    ColumnCache,
    DiskCache,
    EngineConfig,
)
from repro.serving.colcache import decode_column_state, encode_column_state
from repro.text import train_wordpiece


@pytest.fixture(scope="module")
def dataset():
    return generate_wikitable_dataset(num_tables=20, seed=3, max_rows=4)


def _train(dataset, **config_overrides):
    tokenizer = train_wordpiece(dataset.all_cell_text(), vocab_size=600)
    encoder = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        hidden_dim=32,
        num_layers=2,
        num_heads=2,
        ffn_dim=64,
        max_position=160,
        num_segments=8,
        dropout=0.0,
    )
    config = DoduoConfig(
        epochs=1, batch_size=8, keep_best_checkpoint=False, **config_overrides
    )
    trainer = DoduoTrainer(dataset, tokenizer, encoder, config)
    trainer.train()
    return trainer


@pytest.fixture(scope="module")
def sc_trainer(dataset):
    """Single-column (DosoloSCol) model — the mode the cache serves."""
    return _train(dataset, single_column=True)


@pytest.fixture(scope="module")
def tw_trainer(dataset):
    """Table-wise model — the mode the cache must stay out of."""
    return _train(dataset)


def _tables():
    shared = Column(values=["tokyo", "osaka", "kyoto"], header="city")
    t1 = Table(
        columns=[shared, Column(values=["1", "2", "3"], header="rank")],
        table_id="t1",
    )
    t2 = Table(
        columns=[
            Column(values=["japan", "japan", "japan"], header="country"),
            shared,  # same content, different table, different position
        ],
        table_id="t2",
    )
    return t1, t2


def _payload(result):
    a = result.annotated
    return (a.coltypes, a.type_scores, a.colrels, a.colemb)


def _assert_same(p, q):
    assert p[0] == q[0]
    assert p[1] == q[1]
    assert p[2] == q[2]
    if p[3] is None or q[3] is None:
        assert p[3] is None and q[3] is None
    else:
        assert (p[3] == q[3]).all()


OPTIONS = AnnotationOptions(with_embeddings=True)


# ---------------------------------------------------------------------------
# ColumnCache unit behaviour
# ---------------------------------------------------------------------------


class TestColumnCacheUnit:
    def test_lookup_store_and_counters(self):
        cache = ColumnCache(8, model_key="m")
        state = np.arange(6, dtype=np.float32)
        assert cache.lookup("fp", 10) is None
        cache.store("fp", 10, state)
        assert (cache.lookup("fp", 10) == state).all()
        assert cache.lookup("fp", 12) is None  # width is part of the key
        assert (cache.hits, cache.misses) == (1, 2)

    def test_model_key_rekeys_everything(self):
        cache = ColumnCache(8, model_key="before")
        cache.store("fp", 10, np.zeros(4, dtype=np.float32))
        cache.model_key = "after"  # weights changed
        assert cache.lookup("fp", 10) is None
        cache.model_key = "before"
        assert cache.lookup("fp", 10) is not None

    def test_capacity_evicts_lru(self):
        cache = ColumnCache(2)
        for n in range(3):
            cache.store(f"fp{n}", 8, np.full(2, n, dtype=np.float32))
        assert cache.lookup("fp0", 8) is None  # evicted
        assert cache.lookup("fp2", 8) is not None
        assert len(cache) == 2

    @pytest.mark.parametrize("dtype", ("float32", "float64"))
    def test_payload_round_trip_byte_exact(self, dtype):
        rng = np.random.default_rng(5)
        state = rng.standard_normal(32).astype(dtype)
        import json

        decoded = decode_column_state(
            json.loads(json.dumps(encode_column_state(state)))
        )
        assert decoded.dtype == state.dtype
        assert (decoded == state).all()

    def test_disk_tier_round_trip_and_promotion(self, tmp_path):
        disk = DiskCache(str(tmp_path / "cache"))
        state = np.linspace(0, 1, 16, dtype=np.float32)
        writer = ColumnCache(8, model_key="m", disk=disk, persist=True)
        writer.store("fp", 10, state)
        # a fresh process: empty memory tier, same directory
        reader = ColumnCache(8, model_key="m", disk=disk, persist=True)
        got = reader.lookup("fp", 10)
        assert (got == state).all()
        assert reader.persisted_hits == 1
        # promoted into memory: second lookup skips the disk
        assert reader.lookup("fp", 10) is not None
        assert reader.persisted_hits == 1

    def test_disk_tier_respects_model_key(self, tmp_path):
        disk = DiskCache(str(tmp_path / "cache"))
        writer = ColumnCache(8, model_key="m1", disk=disk, persist=True)
        writer.store("fp", 10, np.zeros(4, dtype=np.float32))
        reader = ColumnCache(8, model_key="m2", disk=disk, persist=True)
        assert reader.lookup("fp", 10) is None

    def test_clear_resets_memory_not_disk(self, tmp_path):
        disk = DiskCache(str(tmp_path / "cache"))
        cache = ColumnCache(8, model_key="m", disk=disk, persist=True)
        cache.store("fp", 10, np.ones(4, dtype=np.float32))
        cache.clear()
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)
        assert cache.lookup("fp", 10) is not None  # back from disk


# ---------------------------------------------------------------------------
# Engine integration: cross-table reuse with byte parity
# ---------------------------------------------------------------------------


class TestEngineColumnCache:
    def test_cross_table_hit_with_identical_bytes(self, sc_trainer):
        t1, t2 = _tables()
        reference = AnnotationEngine(
            sc_trainer, EngineConfig(cache_size=0, column_cache_size=0)
        )
        cached = AnnotationEngine(
            sc_trainer, EngineConfig(cache_size=0, column_cache_size=64)
        )
        ref1 = reference.annotate_batch([t1], OPTIONS)[0]
        ref2 = reference.annotate_batch([t2], OPTIONS)[0]
        got1 = cached.annotate_batch([t1], OPTIONS)[0]
        assert cached.stats.column_hits == 0  # cold
        tokens_before = sc_trainer.model.real_tokens
        got2 = cached.annotate_batch([t2], OPTIONS)[0]
        cached_tokens = sc_trainer.model.real_tokens - tokens_before
        _assert_same(_payload(got1), _payload(ref1))
        _assert_same(_payload(got2), _payload(ref2))
        assert cached.stats.column_hits >= 1  # "city" reused across tables
        assert 0.0 < cached.stats.column_hit_rate < 1.0
        # the hit skipped real encoder work: t2 encoded fewer column tokens
        # than the uncached engine spent on it
        tokens_before = sc_trainer.model.real_tokens
        AnnotationEngine(
            sc_trainer, EngineConfig(cache_size=0, column_cache_size=0)
        ).annotate_batch([t2], OPTIONS)
        uncached_tokens = sc_trainer.model.real_tokens - tokens_before
        assert cached_tokens < uncached_tokens

    def test_in_batch_duplicate_columns_encode_once(self, sc_trainer):
        t1, t2 = _tables()
        reference = AnnotationEngine(
            sc_trainer, EngineConfig(cache_size=0, column_cache_size=0)
        )
        cached = AnnotationEngine(
            sc_trainer, EngineConfig(cache_size=0, column_cache_size=64)
        )
        expected = [
            _payload(r) for r in reference.annotate_batch([t1, t2], OPTIONS)
        ]
        tokens_before = sc_trainer.model.real_tokens
        got = [_payload(r) for r in cached.annotate_batch([t1, t2], OPTIONS)]
        spent = sc_trainer.model.real_tokens - tokens_before
        for p, q in zip(got, expected):
            _assert_same(p, q)
        # 4 columns, 3 unique: the duplicate encodes zero tokens
        tokens_before = sc_trainer.model.real_tokens
        reference.annotate_batch([t1, t2], OPTIONS)
        assert spent < sc_trainer.model.real_tokens - tokens_before

    def test_warm_repeat_is_all_hits(self, sc_trainer):
        t1, t2 = _tables()
        engine = AnnotationEngine(
            sc_trainer, EngineConfig(cache_size=0, column_cache_size=64)
        )
        first = [_payload(r) for r in engine.annotate_batch([t1, t2], OPTIONS)]
        misses_after_cold = engine.stats.column_misses
        second = [_payload(r) for r in engine.annotate_batch([t1, t2], OPTIONS)]
        for p, q in zip(first, second):
            _assert_same(p, q)
        assert engine.stats.column_misses == misses_after_cold  # no new misses

    def test_weight_update_invalidates(self, sc_trainer, dataset):
        """After a weight change the fingerprint re-keys the cache: warm
        entries for the old weights must not leak into new answers."""
        t1, t2 = _tables()
        engine = AnnotationEngine(
            sc_trainer, EngineConfig(cache_size=0, column_cache_size=64)
        )
        engine.annotate_batch([t1], OPTIONS)  # warm under the old weights
        old_key = engine.model_fingerprint
        state = sc_trainer.model.state_dict()
        try:
            perturbed = dict(state)
            name, value = next(iter(state.items()))
            perturbed[name] = value + np.float32(0.25)
            sc_trainer.model.load_state_dict(perturbed)
            sc_trainer.invalidate_fingerprint()
            assert engine.model_fingerprint != old_key
            fresh = AnnotationEngine(
                sc_trainer, EngineConfig(cache_size=0, column_cache_size=0)
            )
            expected = [_payload(r) for r in fresh.annotate_batch([t2], OPTIONS)]
            got = [_payload(r) for r in engine.annotate_batch([t2], OPTIONS)]
            for p, q in zip(got, expected):
                _assert_same(p, q)
        finally:
            sc_trainer.model.load_state_dict(state)
            sc_trainer.invalidate_fingerprint()

    def test_dtype_engines_never_share_entries(self, sc_trainer):
        t1, _ = _tables()
        e32 = AnnotationEngine(
            sc_trainer, EngineConfig(cache_size=0, column_cache_size=64)
        )
        e64 = AnnotationEngine(
            sc_trainer,
            EngineConfig(cache_size=0, column_cache_size=64, dtype="float64"),
        )
        assert e32.model_fingerprint != e64.model_fingerprint
        r32 = e32.annotate_batch([t1], OPTIONS)[0]
        r64 = e64.annotate_batch([t1], OPTIONS)[0]
        assert r64.annotated.colemb.dtype == np.float64
        drift = np.abs(
            r32.annotated.colemb - r64.annotated.colemb.astype(np.float32)
        ).max()
        assert drift < 1e-3  # same model, different precision policy

    def test_column_states_persist_across_engines(self, sc_trainer, tmp_path):
        """column_cache_persist: a second engine over the same cache
        directory warms from disk without re-encoding the shared column."""
        t1, t2 = _tables()
        config = EngineConfig(
            cache_size=0,
            column_cache_size=64,
            column_cache_persist=True,
            cache_dir=str(tmp_path / "cache"),
        )
        first = AnnotationEngine(sc_trainer, config)
        first.annotate_batch([t1], OPTIONS)
        second = AnnotationEngine(sc_trainer, config)
        # different table_id so the whole-result disk tier cannot answer
        t2_renamed = Table(columns=t2.columns, table_id="t2-renamed")
        reference = AnnotationEngine(
            sc_trainer, EngineConfig(cache_size=0, column_cache_size=0)
        )
        expected = _payload(reference.annotate_batch([t2_renamed], OPTIONS)[0])
        got = _payload(second.annotate_batch([t2_renamed], OPTIONS)[0])
        _assert_same(got, expected)
        assert second.column_cache.persisted_hits >= 1

    def test_table_wise_engines_do_not_build_the_cache(self, tw_trainer):
        engine = AnnotationEngine(
            tw_trainer, EngineConfig(cache_size=0, column_cache_size=64)
        )
        assert engine.column_cache is None
        t1, _ = _tables()
        engine.annotate_batch([t1], OPTIONS)
        assert engine.stats.column_hits == 0
        assert engine.stats.column_misses == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(dtype="float16")
        with pytest.raises(ValueError):
            EngineConfig(kernels="blas")
        with pytest.raises(ValueError):
            EngineConfig(dtype="float64", kernels="reference")
        with pytest.raises(ValueError):
            EngineConfig(column_cache_size=-1)


# ---------------------------------------------------------------------------
# Gateway path: cold vs warm equivalence + stats surface
# ---------------------------------------------------------------------------


class TestGatewayColumnCache:
    def test_cold_vs_warm_through_gateway(self, sc_trainer):
        from repro.serving import AnnotationGateway, ModelRegistry, QueueConfig

        t1, t2 = _tables()
        registry = ModelRegistry(
            engine_config=EngineConfig(cache_size=0, column_cache_size=64)
        )
        registry.register("sc", sc_trainer)
        with AnnotationGateway(registry, QueueConfig(max_latency=0.02)) as gw:
            cold = [
                gw.submit(t, options=OPTIONS).result(timeout=60)
                for t in (t1, t2)
            ]
            warm = [
                gw.submit(t, options=OPTIONS).result(timeout=60)
                for t in (t1, t2)
            ]
            for c, w in zip(cold, warm):
                _assert_same(_payload(c), _payload(w))
            stats = gw.stats.to_dict()
        engine_stats = stats["engines"]["sc"]
        assert "column_hit_rate" in engine_stats
        assert engine_stats["column_hits"] >= 1
        assert 0.0 <= engine_stats["column_hit_rate"] <= 1.0
