"""The async request-queue front-end: batching, dedup, equivalence.

The load-bearing guarantees:

* queued + deduped + disk-cached annotation is **byte-identical** to a
  direct ``engine.annotate`` call (the ISSUE-2 acceptance criterion);
* concurrent content-identical requests share one annotation and every
  waiter receives the *same* result object;
* the worker respects the max-batch/max-latency policy, serves everything
  pending at close, and delivers engine exceptions to each waiter.
"""

from __future__ import annotations

import queue as _queue
import threading

import numpy as np
import pytest

from repro.core import DoduoConfig, DoduoTrainer
from repro.datasets import Column, Table, generate_wikitable_dataset
from repro.nn import TransformerConfig
from repro.serving import (
    AnnotationEngine,
    AnnotationOptions,
    AnnotationService,
    EngineConfig,
    QueueConfig,
)
from repro.text import train_wordpiece


@pytest.fixture(scope="module")
def trainer():
    dataset = generate_wikitable_dataset(num_tables=20, seed=13, max_rows=4)
    tokenizer = train_wordpiece(dataset.all_cell_text(), vocab_size=600)
    encoder_config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        hidden_dim=32,
        num_layers=2,
        num_heads=2,
        ffn_dim=64,
        max_position=160,
        num_segments=8,
        dropout=0.0,
    )
    config = DoduoConfig(epochs=1, batch_size=8, keep_best_checkpoint=False)
    t = DoduoTrainer(dataset, tokenizer, encoder_config, config)
    t.train()
    return t


def _service(trainer, queue_config=None, engine_config=None, result_cache=None):
    engine = AnnotationEngine(
        trainer, engine_config or EngineConfig(), result_cache=result_cache
    )
    return AnnotationService(engine, queue_config or QueueConfig(max_latency=0.05))


@pytest.mark.smoke
class TestQueueEquivalence:
    def test_queued_byte_identical_to_direct(self, trainer, tmp_path):
        """The acceptance regression: queue + dedup + disk cache, three ways
        of answering, all byte-identical to direct engine.annotate."""
        tables = trainer.dataset.tables[:6]
        direct_engine = AnnotationEngine(trainer)
        direct = [direct_engine.annotate(t) for t in tables]

        cache_dir = str(tmp_path / "cache")
        workload = tables * 3  # duplicates exercise dedup fan-out
        with _service(
            trainer, engine_config=EngineConfig(cache_dir=cache_dir)
        ) as service:
            futures = [service.submit(t) for t in workload]
            queued = [f.result() for f in futures]
        # Second service over the same directory: every answer from disk.
        with _service(
            trainer, engine_config=EngineConfig(cache_dir=cache_dir)
        ) as restarted:
            passes_before = trainer.model.encode_calls
            from_disk = [restarted.annotate(t) for t in tables]
            assert trainer.model.encode_calls == passes_before

        for i, want in enumerate(direct):
            for got in (queued[i], queued[i + 6], queued[i + 12], from_disk[i]):
                assert got.coltypes == want.coltypes
                assert got.type_scores == want.type_scores  # exact floats
                assert got.colrels == want.colrels
                assert (
                    got.annotated.requested_pairs == want.annotated.requested_pairs
                )
                assert np.array_equal(got.colemb, want.colemb)
        assert all(r.from_disk for r in from_disk)

    def test_inexact_mode_still_equivalent_predictions(self, trainer):
        tables = trainer.dataset.tables[:8]
        direct = [AnnotationEngine(trainer).annotate(t) for t in tables]
        with _service(
            trainer, QueueConfig(max_batch=8, max_latency=0.2, exact=False)
        ) as service:
            futures = [service.submit(t) for t in tables]
            results = [f.result() for f in futures]
        for got, want in zip(results, direct):
            assert got.coltypes == want.coltypes
            assert got.colrels == want.colrels
            np.testing.assert_allclose(got.colemb, want.colemb, atol=1e-5)


@pytest.mark.smoke
class TestDedup:
    def test_waiters_share_one_result_object(self, trainer):
        table = trainer.dataset.tables[0]
        with _service(
            trainer, QueueConfig(max_batch=16, max_latency=0.2)
        ) as service:
            futures = [service.submit(table) for _ in range(8)]
            results = [f.result() for f in futures]
        assert all(r is results[0] for r in results)
        assert service.stats.dedup_hits == 7
        assert service.stats.unique_annotated == 1
        assert service.stats.completed == 8

    def test_dedup_is_content_based(self, trainer):
        source = trainer.dataset.tables[0]
        twin = Table(columns=source.columns, table_id="different-id")
        with _service(
            trainer, QueueConfig(max_batch=8, max_latency=0.2)
        ) as service:
            futures = [service.submit(source), service.submit(twin)]
            a, b = [f.result() for f in futures]
        # Content-identical tables share the annotation work...
        assert service.stats.unique_annotated == 1
        assert a.type_scores == b.type_scores
        # ...but every waiter keeps its *own* table identity: the twin's
        # answer must carry the twin's table_id, not the representative's.
        assert a.table.table_id == source.table_id
        assert b.table.table_id == "different-id"
        assert b.to_dict()["table_id"] == "different-id"

    def test_different_options_not_deduped(self, trainer):
        table = trainer.dataset.tables[0]
        with _service(
            trainer, QueueConfig(max_batch=8, max_latency=0.2)
        ) as service:
            full = service.submit(table)
            trimmed = service.submit(table, AnnotationOptions(top_k=1))
            assert len(full.result().type_scores[0]) > 1
            assert len(trimmed.result().type_scores[0]) == 1
        assert service.stats.dedup_hits == 0
        assert service.stats.unique_annotated == 2

    def test_dedup_collapses_encoder_passes(self, trainer):
        table = trainer.dataset.tables[0]
        engine = AnnotationEngine(trainer, EngineConfig(cache_size=0))
        with AnnotationService(
            engine, QueueConfig(max_batch=16, max_latency=0.2)
        ) as service:
            futures = [service.submit(table) for _ in range(10)]
            [f.result() for f in futures]
        assert engine.stats.encoder_passes == 1


@pytest.mark.smoke
class TestQueuePolicy:
    def test_max_batch_splits_drains(self, trainer):
        tables = trainer.dataset.tables[:6]
        with _service(
            trainer, QueueConfig(max_batch=2, max_latency=0.2)
        ) as service:
            futures = [service.submit(t) for t in tables]
            [f.result() for f in futures]
        assert service.stats.batches >= 3  # never more than 2 per drain

    def test_zero_latency_serves_immediately(self, trainer):
        with _service(
            trainer, QueueConfig(max_batch=64, max_latency=0.0)
        ) as service:
            assert service.annotate(trainer.dataset.tables[0]).coltypes

    def test_close_serves_pending_then_rejects(self, trainer):
        service = _service(trainer)
        future = service.submit(trainer.dataset.tables[0])
        service.close()
        assert future.result(timeout=5).coltypes  # resolved before shutdown
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(trainer.dataset.tables[0])
        service.close()  # idempotent

    def test_submit_from_many_threads(self, trainer):
        tables = trainer.dataset.tables[:10]
        results = {}
        with _service(
            trainer, QueueConfig(max_batch=4, max_latency=0.02)
        ) as service:

            def client(index):
                results[index] = service.submit(tables[index]).result(timeout=30)

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(tables))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        reference = AnnotationEngine(trainer)
        for i, table in enumerate(tables):
            assert results[i].type_scores == reference.annotate(table).type_scores

    def test_backpressure_raises_when_full(self, trainer):
        # An unstarted worker never drains, so the bounded queue fills.
        service = AnnotationService(
            AnnotationEngine(trainer),
            QueueConfig(max_queue_size=2, submit_timeout=0.01),
        )
        # Block the underlying EngineWorker's auto-start.
        service._worker._worker = threading.Thread(target=lambda: None)
        table = trainer.dataset.tables[0]
        service.submit(table)
        service.submit(table)
        with pytest.raises(_queue.Full):
            service.submit(table)

    def test_annotate_stream_preserves_order(self, trainer):
        tables = trainer.dataset.tables[:9]
        with _service(
            trainer, QueueConfig(max_batch=4, max_latency=0.02)
        ) as service:
            streamed = list(service.annotate_stream(iter(tables), window=3))
        assert [r.table.table_id for r in streamed] == [
            t.table_id for t in tables
        ]

    def test_engine_errors_reach_every_waiter(self, trainer):
        bad = Table(
            columns=[Column(values=["x"], header="h")] * 2, table_id="bad-pair"
        )
        with _service(
            trainer, QueueConfig(max_batch=4, max_latency=0.2)
        ) as service:
            futures = [
                service.submit(
                    bad, AnnotationOptions(score_threshold=None)
                )
                for _ in range(2)
            ]
            # Out-of-range explicit pairs make the engine raise.
            from repro.serving import AnnotationRequest

            broken = AnnotationRequest(table=bad, pairs=((0, 5),))
            failing = [service.submit(broken) for _ in range(2)]
            for future in futures:
                assert future.result(timeout=10)
            for future in failing:
                with pytest.raises(ValueError, match="out of range"):
                    future.result(timeout=10)
        assert service.stats.failed >= 2

    def test_malformed_request_fails_alone_and_worker_survives(self, trainer):
        """A request that breaks the content hash (non-string cells) must
        fail its own future — and only its own — without killing the
        worker thread (a dead worker strands every later future)."""
        poison = Table(
            columns=[Column(values=["3.14", "2.71"], header="nums")],
            table_id="poison",
        )
        # Column coerces constructor values to str; simulate malformed data
        # sneaking in post-construction (the hash hits it first).
        poison.columns[0].values[0] = 3.14
        good = trainer.dataset.tables[0]
        with _service(
            trainer, QueueConfig(max_batch=4, max_latency=0.1)
        ) as service:
            bad_future = service.submit(poison)
            good_future = service.submit(good)
            assert good_future.result(timeout=10).coltypes
            with pytest.raises(AttributeError):
                bad_future.result(timeout=10)
            # The worker is still alive and serving.
            assert service.annotate(good).coltypes
        assert service.stats.failed == 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError, match="max_batch"):
            QueueConfig(max_batch=0)
        with pytest.raises(ValueError, match="max_latency"):
            QueueConfig(max_latency=-1)
        with pytest.raises(ValueError, match="max_queue_size"):
            QueueConfig(max_queue_size=0)
