"""Tests for evaluation metrics (F1 variants, V-measure)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import (
    confusion_matrix,
    homogeneity_completeness_v,
    multiclass_macro_f1,
    multiclass_micro_f1,
    multilabel_micro_prf,
    multilabel_per_label_f1,
    per_class_f1,
)


class TestMulticlass:
    def test_micro_equals_accuracy(self):
        prf = multiclass_micro_f1([0, 1, 2, 2], [0, 1, 1, 2])
        assert prf.f1 == pytest.approx(0.75)
        assert prf.precision == prf.recall == prf.f1

    def test_perfect(self):
        prf = multiclass_micro_f1([1, 2], [1, 2])
        assert prf.as_tuple() == (1.0, 1.0, 1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            multiclass_micro_f1([0, 1], [0])

    def test_per_class(self):
        scores = per_class_f1([0, 0, 1], [0, 1, 1], num_classes=2)
        assert scores[0].precision == 1.0
        assert scores[0].recall == pytest.approx(0.5)
        assert scores[1].precision == pytest.approx(0.5)
        assert scores[1].recall == 1.0

    def test_macro_averages_present_classes_only(self):
        # class 2 never appears in y_true -> excluded from the macro average
        macro = multiclass_macro_f1([0, 0, 1, 1], [0, 0, 1, 1], num_classes=3)
        assert macro == 1.0

    def test_macro_empty(self):
        assert multiclass_macro_f1([], [], num_classes=3) == 0.0


class TestMultilabel:
    def test_micro_prf(self):
        y_true = np.array([[1, 0, 1], [0, 1, 0]], dtype=bool)
        y_pred = np.array([[1, 1, 0], [0, 1, 0]], dtype=bool)
        prf = multilabel_micro_prf(y_true, y_pred)
        # tp=2 fp=1 fn=1
        assert prf.precision == pytest.approx(2 / 3)
        assert prf.recall == pytest.approx(2 / 3)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            multilabel_micro_prf(np.zeros((2, 3)), np.zeros((3, 2)))

    def test_per_label(self):
        y_true = np.array([[1, 0], [1, 1]], dtype=bool)
        y_pred = np.array([[1, 0], [0, 1]], dtype=bool)
        scores = multilabel_per_label_f1(y_true, y_pred)
        assert scores[0].recall == pytest.approx(0.5)
        assert scores[1].f1 == 1.0

    def test_empty_prediction_zero_f1(self):
        y_true = np.ones((2, 2), dtype=bool)
        y_pred = np.zeros((2, 2), dtype=bool)
        assert multilabel_micro_prf(y_true, y_pred).f1 == 0.0


class TestVMeasure:
    def test_perfect_clustering(self):
        h, c, v = homogeneity_completeness_v([0, 0, 1, 1], [5, 5, 9, 9])
        assert (h, c, v) == (1.0, 1.0, 1.0)

    def test_everything_in_one_cluster_complete_not_homogeneous(self):
        h, c, v = homogeneity_completeness_v([0, 0, 1, 1], [0, 0, 0, 0])
        assert h == pytest.approx(0.0, abs=1e-9)
        assert c == 1.0
        assert v == pytest.approx(0.0, abs=1e-9)

    def test_singletons_homogeneous_not_complete(self):
        h, c, v = homogeneity_completeness_v([0, 0, 1, 1], [0, 1, 2, 3])
        assert h == 1.0
        assert c < 1.0

    def test_label_permutation_invariance(self):
        base = homogeneity_completeness_v([0, 0, 1, 1, 2], [1, 1, 0, 0, 2])
        renamed = homogeneity_completeness_v([0, 0, 1, 1, 2], [7, 7, 3, 3, 9])
        assert base == pytest.approx(renamed)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            homogeneity_completeness_v([0], [0, 1])

    @settings(max_examples=40, deadline=None)
    @given(
        labels=st.lists(st.integers(0, 3), min_size=2, max_size=30),
        seed=st.integers(0, 100),
    )
    def test_property_bounds_and_self_clustering(self, labels, seed):
        generator = np.random.default_rng(seed)
        predicted = generator.integers(0, 4, size=len(labels)).tolist()
        h, c, v = homogeneity_completeness_v(labels, predicted)
        assert -1e-9 <= h <= 1 + 1e-9
        assert -1e-9 <= c <= 1 + 1e-9
        assert -1e-9 <= v <= 1 + 1e-9
        # clustering identical to the truth is always perfect
        assert homogeneity_completeness_v(labels, labels)[2] == pytest.approx(1.0)


class TestConfusionMatrix:
    def test_counts(self):
        matrix = confusion_matrix([0, 0, 1], [0, 1, 1], num_classes=2)
        assert matrix[0, 0] == 1
        assert matrix[0, 1] == 1
        assert matrix[1, 1] == 1
        assert matrix.sum() == 3
