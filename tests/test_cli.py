"""End-to-end tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core import save_annotator
from repro.datasets import generate_viznet_dataset
from repro.io import load_dataset_jsonl, save_dataset_jsonl, write_table_csv


@pytest.fixture(scope="module")
def bundle_dir(shared_tiny_annotator, tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli-bundle")
    save_annotator(shared_tiny_annotator, directory)
    return directory


@pytest.fixture()
def sample_csv(shared_tiny_annotator, tmp_path):
    table = shared_tiny_annotator.trainer.dataset.tables[0]
    path = tmp_path / "sample.csv"
    write_table_csv(table, path)
    return path


class TestGenerate:
    @pytest.mark.parametrize("corpus", ["wikitable", "viznet"])
    def test_generates_jsonl(self, corpus, tmp_path, capsys):
        out = tmp_path / f"{corpus}.jsonl"
        code = main(["generate", corpus, "--num-tables", "8", "--out", str(out)])
        assert code == 0
        dataset = load_dataset_jsonl(out)
        assert len(dataset.tables) == 8
        assert "wrote 8 tables" in capsys.readouterr().out

    def test_generates_enterprise(self, tmp_path):
        out = tmp_path / "hr.jsonl"
        assert main(["generate", "enterprise", "--out", str(out)]) == 0
        dataset = load_dataset_jsonl(out)
        assert dataset.tables

    def test_deterministic_under_seed(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        main(["generate", "viznet", "--num-tables", "5", "--seed", "3", "--out", str(a)])
        main(["generate", "viznet", "--num-tables", "5", "--seed", "3", "--out", str(b)])
        assert a.read_text() == b.read_text()


class TestTrainAnnotateEvaluate:
    @pytest.fixture(scope="class")
    def trained_bundle(self, tmp_path_factory):
        """Train a minuscule model through the CLI itself."""
        root = tmp_path_factory.mktemp("cli-train")
        corpus = root / "corpus.jsonl"
        dataset = generate_viznet_dataset(num_tables=30, seed=5)
        save_dataset_jsonl(dataset, corpus)
        bundle = root / "model"
        code = main([
            "train", str(corpus), "--out", str(bundle),
            "--epochs", "1", "--vocab-size", "600",
            "--hidden-dim", "32", "--layers", "1", "--heads", "2",
        ])
        assert code == 0
        return root, corpus, bundle

    def test_train_writes_bundle(self, trained_bundle):
        _, _, bundle = trained_bundle
        assert (bundle / "bundle.json").exists()
        assert (bundle / "weights.npz").exists()

    def test_annotate_text_output(self, trained_bundle, tmp_path, capsys):
        root, corpus, bundle = trained_bundle
        dataset = load_dataset_jsonl(corpus)
        csv_path = tmp_path / "t.csv"
        write_table_csv(dataset.tables[0], csv_path)
        assert main(["annotate", str(bundle), str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "predicted types" in out

    def test_annotate_json_output(self, trained_bundle, tmp_path, capsys):
        root, corpus, bundle = trained_bundle
        dataset = load_dataset_jsonl(corpus)
        csv_path = tmp_path / "t.csv"
        write_table_csv(dataset.tables[1], csv_path)
        assert main(["annotate", str(bundle), str(csv_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["columns"]) == dataset.tables[1].num_columns
        assert all(c["predicted_types"] for c in payload["columns"])

    def test_evaluate_prints_scores(self, trained_bundle, capsys):
        _, corpus, bundle = trained_bundle
        assert main(["evaluate", str(bundle), str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "micro-F1" in out
        assert "type" in out

    def test_info(self, trained_bundle, capsys):
        _, _, bundle = trained_bundle
        assert main(["info", str(bundle)]) == 0
        out = capsys.readouterr().out
        assert "parameters" in out
        assert "type vocabulary" in out


@pytest.mark.smoke
class TestAnnotateJsonlBatch:
    """The serving mode: `repro annotate model corpus.jsonl --batch-size N`."""

    @pytest.fixture(scope="class")
    def corpus(self, shared_tiny_annotator, tmp_path_factory):
        from repro.datasets import TableDataset

        dataset = shared_tiny_annotator.trainer.dataset
        subset = TableDataset(
            tables=dataset.tables[:6],
            type_vocab=list(dataset.type_vocab),
            relation_vocab=list(dataset.relation_vocab),
            name="serve-me",
        )
        path = tmp_path_factory.mktemp("serve") / "corpus.jsonl"
        save_dataset_jsonl(subset, path)
        return path

    def test_batch_annotate_to_file(self, bundle_dir, corpus, tmp_path, capsys):
        out = tmp_path / "results.jsonl"
        code = main([
            "annotate", str(bundle_dir), str(corpus),
            "--batch-size", "4", "--out", str(out),
        ])
        assert code == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(records) == 6
        for record in records:
            assert record["columns"]
            assert all(c["predicted_types"] for c in record["columns"])
            # default --top-k is 3
            assert all(len(c["type_scores"]) <= 3 for c in record["columns"])
        assert "annotated 6 tables" in capsys.readouterr().out

    def test_batch_annotate_to_stdout(self, bundle_dir, corpus, capsys):
        assert main(["annotate", str(bundle_dir), str(corpus)]) == 0
        captured = capsys.readouterr()
        records = [json.loads(line) for line in captured.out.splitlines()]
        assert len(records) == 6
        assert "annotated 6 tables" in captured.err

    def test_batch_annotate_with_embeddings(self, bundle_dir, corpus, tmp_path):
        out = tmp_path / "emb.jsonl"
        code = main([
            "annotate", str(bundle_dir), str(corpus),
            "--embeddings", "--out", str(out),
        ])
        assert code == 0
        record = json.loads(out.read_text().splitlines()[0])
        assert record["embedding_dim"] > 0
        assert len(record["columns"][0]["embedding"]) == record["embedding_dim"]

    def test_empty_corpus_errors(self, bundle_dir, tmp_path, capsys):
        from repro.datasets import TableDataset

        empty = tmp_path / "empty.jsonl"
        save_dataset_jsonl(TableDataset(tables=[], type_vocab=["t"]), empty)
        assert main(["annotate", str(bundle_dir), str(empty)]) == 1
        assert "no tables" in capsys.readouterr().err

    def test_csv_only_flags_rejected(self, bundle_dir, corpus, capsys):
        code = main([
            "annotate", str(bundle_dir), str(corpus),
            "--max-columns", "2", "--json",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "--json" in err and "--max-columns" in err
        assert "CSV input" in err

    def test_jsonl_only_flags_rejected_for_csv(self, bundle_dir, sample_csv,
                                               tmp_path, capsys):
        code = main([
            "annotate", str(bundle_dir), str(sample_csv),
            "--out", str(tmp_path / "r.jsonl"), "--embeddings",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "--out" in err and "--embeddings" in err
        assert ".jsonl serving mode" in err


@pytest.mark.smoke
class TestCacheDirAndServe:
    """PR-2 serving tiers through the CLI: --cache-dir and `repro serve`."""

    @pytest.fixture(scope="class")
    def corpus(self, shared_tiny_annotator, tmp_path_factory):
        from repro.datasets import TableDataset

        dataset = shared_tiny_annotator.trainer.dataset
        subset = TableDataset(
            tables=dataset.tables[:5],
            type_vocab=list(dataset.type_vocab),
            relation_vocab=list(dataset.relation_vocab),
            name="serve-queue",
        )
        path = tmp_path_factory.mktemp("serve-queue") / "corpus.jsonl"
        save_dataset_jsonl(subset, path)
        return path

    def test_cache_dir_warm_run_zero_passes(self, bundle_dir, corpus,
                                            tmp_path, capsys):
        cache_dir = tmp_path / "anno-cache"
        cold = tmp_path / "cold.jsonl"
        warm = tmp_path / "warm.jsonl"
        assert main([
            "annotate", str(bundle_dir), str(corpus),
            "--cache-dir", str(cache_dir), "--out", str(cold),
        ]) == 0
        assert "0 disk hits" in capsys.readouterr().out
        assert main([
            "annotate", str(bundle_dir), str(corpus),
            "--cache-dir", str(cache_dir), "--out", str(warm),
        ]) == 0
        out = capsys.readouterr().out
        assert "0 encoder passes" in out and "5 disk hits" in out
        assert cold.read_text() == warm.read_text()  # byte-identical records

    def test_cache_dir_rejected_for_csv(self, bundle_dir, sample_csv,
                                        tmp_path, capsys):
        code = main([
            "annotate", str(bundle_dir), str(sample_csv),
            "--cache-dir", str(tmp_path / "c"),
        ])
        assert code == 1
        assert "--cache-dir" in capsys.readouterr().err

    def test_serve_corpus_matches_annotate(self, bundle_dir, corpus,
                                           tmp_path, capsys):
        annotate_out = tmp_path / "annotate.jsonl"
        serve_out = tmp_path / "serve.jsonl"
        assert main([
            "annotate", str(bundle_dir), str(corpus),
            "--batch-size", "1", "--out", str(annotate_out),
        ]) == 0
        assert main([
            "serve", str(bundle_dir), str(corpus), "--out", str(serve_out),
        ]) == 0
        # Exact mode: queue-served records match single-table annotate runs.
        assert serve_out.read_text() == annotate_out.read_text()
        assert "served 5 tables" in capsys.readouterr().out

    def test_serve_with_cache_dir(self, bundle_dir, corpus, tmp_path, capsys):
        cache_dir = tmp_path / "serve-cache"
        assert main([
            "serve", str(bundle_dir), str(corpus),
            "--cache-dir", str(cache_dir),
            "--out", str(tmp_path / "a.jsonl"),
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve", str(bundle_dir), str(corpus),
            "--cache-dir", str(cache_dir),
            "--out", str(tmp_path / "b.jsonl"),
        ]) == 0
        out = capsys.readouterr().out
        assert "0 encoder passes" in out and "5 disk hits" in out

    def test_serve_stdin_loop_mode(self, bundle_dir, corpus, capsys,
                                   monkeypatch):
        import io
        import sys as _sys

        monkeypatch.setattr(
            _sys, "stdin", io.StringIO(corpus.read_text())
        )
        assert main(["serve", str(bundle_dir), "-"]) == 0
        captured = capsys.readouterr()
        records = [json.loads(line) for line in captured.out.splitlines()]
        assert len(records) == 5
        assert all(r["columns"] for r in records)
        assert "served 5 tables" in captured.err

    def test_serve_empty_input_errors(self, bundle_dir, capsys, monkeypatch):
        import io
        import sys as _sys

        monkeypatch.setattr(_sys, "stdin", io.StringIO(""))
        assert main(["serve", str(bundle_dir), "-"]) == 1
        assert "no tables" in capsys.readouterr().err


@pytest.mark.smoke
class TestServeMultiModel:
    """The gateway CLI: `repro serve --model NAME=PATH` and stdin routing."""

    @pytest.fixture(scope="class")
    def second_bundle(self, tmp_path_factory):
        """A second, differently-weighted model over the same label space."""
        from repro.core import Doduo, DoduoConfig, DoduoTrainer
        from repro.datasets import generate_wikitable_dataset
        from repro.nn import TransformerConfig
        from repro.text import train_wordpiece

        dataset = generate_wikitable_dataset(num_tables=30, seed=17, max_rows=4)
        tokenizer = train_wordpiece(dataset.all_cell_text(), vocab_size=800)
        encoder_config = TransformerConfig(
            vocab_size=tokenizer.vocab_size,
            hidden_dim=32,
            num_layers=2,
            num_heads=2,
            ffn_dim=64,
            max_position=160,
            num_segments=8,
            dropout=0.0,
        )
        config = DoduoConfig(epochs=1, batch_size=8, learning_rate=1e-3,
                             seed=5, keep_best_checkpoint=False)
        trainer = DoduoTrainer(dataset, tokenizer, encoder_config, config)
        trainer.train()
        directory = tmp_path_factory.mktemp("cli-second-bundle")
        save_annotator(Doduo(trainer), directory)
        return directory

    @pytest.fixture(scope="class")
    def corpus(self, shared_tiny_annotator, tmp_path_factory):
        from repro.datasets import TableDataset

        dataset = shared_tiny_annotator.trainer.dataset
        subset = TableDataset(
            tables=dataset.tables[:4],
            type_vocab=list(dataset.type_vocab),
            relation_vocab=list(dataset.relation_vocab),
            name="serve-multi",
        )
        path = tmp_path_factory.mktemp("serve-multi") / "corpus.jsonl"
        save_dataset_jsonl(subset, path)
        return path

    def test_named_models_default_route_matches_single_model(
        self, bundle_dir, second_bundle, corpus, tmp_path, capsys
    ):
        single = tmp_path / "single.jsonl"
        multi = tmp_path / "multi.jsonl"
        assert main([
            "serve", str(bundle_dir), str(corpus), "--out", str(single),
        ]) == 0
        # First --model route is the default; the second is along for the
        # ride and must not perturb the default route's bytes.
        assert main([
            "serve",
            "--model", f"primary={bundle_dir}",
            "--model", f"canary={second_bundle}",
            str(corpus), "--out", str(multi),
        ]) == 0
        assert multi.read_text() == single.read_text()
        assert "across 2 models" in capsys.readouterr().out

    def test_stdin_records_route_by_model_field(
        self, bundle_dir, second_bundle, corpus, capsys, monkeypatch
    ):
        import io
        import sys as _sys

        # Two copies of each table record: one defaulted, one routed to the
        # canary via a per-line {"model": ...} field.
        lines = []
        for line in corpus.read_text().splitlines():
            payload = json.loads(line)
            if payload.get("kind") == "dataset":
                lines.append(line)
                continue
            lines.append(line)
            routed = dict(payload)
            routed["model"] = "canary"
            lines.append(json.dumps(routed))
        monkeypatch.setattr(_sys, "stdin", io.StringIO("\n".join(lines) + "\n"))
        assert main([
            "serve",
            "--model", f"primary={bundle_dir}",
            "--model", f"canary={second_bundle}",
            "-",
        ]) == 0
        captured = capsys.readouterr()
        records = [json.loads(line) for line in captured.out.splitlines()]
        assert len(records) == 8
        # Interleaved pairs answer the same table with different weights:
        # at least one table must get different scores from the two models.
        differs = [
            records[i]["columns"] != records[i + 1]["columns"]
            for i in range(0, len(records), 2)
        ]
        assert any(differs)
        assert "served 8 tables" in captured.err

    def test_corpus_records_route_by_model_field(
        self, bundle_dir, second_bundle, corpus, tmp_path
    ):
        """Corpus mode honors per-record {"model": NAME} routes exactly
        like stdin loop mode — same file, same models, same bytes."""
        routed_corpus = tmp_path / "routed.jsonl"
        lines = []
        for line in corpus.read_text().splitlines():
            payload = json.loads(line)
            if payload.get("kind") != "dataset":
                payload["model"] = "canary"
            lines.append(json.dumps(payload))
        routed_corpus.write_text("\n".join(lines) + "\n")
        routed_out = tmp_path / "routed-out.jsonl"
        canary_out = tmp_path / "canary-out.jsonl"
        assert main([
            "serve",
            "--model", f"primary={bundle_dir}",
            "--model", f"canary={second_bundle}",
            str(routed_corpus), "--out", str(routed_out),
        ]) == 0
        # Every record asked for the canary: output must equal a dedicated
        # canary-only serve of the unrouted corpus.
        assert main([
            "serve", str(second_bundle), str(corpus),
            "--out", str(canary_out),
        ]) == 0
        assert routed_out.read_text() == canary_out.read_text()

    def test_bad_model_spec_errors(self, corpus, capsys):
        assert main(["serve", "--model", "broken", str(corpus)]) == 1
        assert "NAME=PATH" in capsys.readouterr().err

    def test_missing_model_errors(self, corpus, capsys):
        assert main(["serve", str(corpus)]) == 1
        err = capsys.readouterr().err
        assert "no model" in err or "bundle" in err

    def test_missing_corpus_errors_accurately(self, bundle_dir, capsys):
        # `repro serve model/` — the user passed a bundle, not a corpus;
        # the error must say what is actually missing.
        assert main(["serve", str(bundle_dir)]) == 1
        assert "no corpus" in capsys.readouterr().err

    def test_missing_corpus_with_model_flag_errors_accurately(
        self, bundle_dir, second_bundle, capsys
    ):
        # `repro serve --model x=P bundle/` — the positional is a bundle,
        # not a corpus: clean error, not an IsADirectoryError traceback.
        assert main([
            "serve", "--model", f"canary={second_bundle}", str(bundle_dir),
        ]) == 1
        assert "no corpus" in capsys.readouterr().err

    def test_flat_cache_layout_stays_warm_under_serve(
        self, bundle_dir, corpus, tmp_path, capsys
    ):
        """A cache directory populated by `repro annotate --cache-dir`
        (flat segment files) must keep serving hits when the same
        directory is handed to single-model `repro serve`."""
        cache_dir = tmp_path / "flat-cache"
        assert main([
            "annotate", str(bundle_dir), str(corpus),
            "--cache-dir", str(cache_dir), "--out", str(tmp_path / "a.jsonl"),
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve", str(bundle_dir), str(corpus),
            "--cache-dir", str(cache_dir), "--out", str(tmp_path / "b.jsonl"),
        ]) == 0
        out = capsys.readouterr().out
        assert "0 encoder passes" in out and "4 disk hits" in out

    def test_loop_mode_survives_malformed_records(self, bundle_dir, corpus,
                                                  capsys, monkeypatch):
        """Non-JSON lines and invalid tables get error records; the
        server keeps answering subsequent lines."""
        import io
        import sys as _sys

        good = corpus.read_text().splitlines()[1]
        stdin = "\n".join([
            "this is not json",
            json.dumps({"table_id": "empty", "columns": []}),
            good,
        ]) + "\n"
        monkeypatch.setattr(_sys, "stdin", io.StringIO(stdin))
        assert main(["serve", str(bundle_dir), "-"]) == 0
        captured = capsys.readouterr()
        records = [json.loads(line) for line in captured.out.splitlines()]
        assert len(records) == 3
        assert "error" in records[0] and "error" in records[1]
        assert records[2]["columns"]
        assert "served 1 tables" in captured.err

    def test_unknown_stdin_route_answered_not_fatal(self, bundle_dir, corpus,
                                                    capsys, monkeypatch):
        """A long-running loop server must survive a record naming an
        unknown model: that record gets an error line, the next records
        keep being served."""
        import io
        import sys as _sys

        lines = corpus.read_text().splitlines()
        bad = json.loads(lines[1])
        bad["model"] = "nope"
        stdin = "\n".join([json.dumps(bad), lines[2]]) + "\n"
        monkeypatch.setattr(_sys, "stdin", io.StringIO(stdin))
        assert main(["serve", str(bundle_dir), "-"]) == 0
        captured = capsys.readouterr()
        records = [json.loads(line) for line in captured.out.splitlines()]
        assert len(records) == 2
        assert "no model registered" in records[0]["error"]
        assert records[1]["columns"]  # the good record was still served
        assert "served 1 tables" in captured.err

    def test_only_bad_routes_is_an_error_exit(self, bundle_dir, corpus,
                                              capsys, monkeypatch):
        import io
        import sys as _sys

        payload = json.loads(corpus.read_text().splitlines()[1])
        payload["model"] = "nope"
        monkeypatch.setattr(
            _sys, "stdin", io.StringIO(json.dumps(payload) + "\n")
        )
        assert main(["serve", str(bundle_dir), "-"]) == 1
        captured = capsys.readouterr()
        assert "no model registered" in captured.out  # the error record
        assert "no tables" in captured.err


@pytest.mark.smoke
class TestServeProtocolFeatures:
    """PR-5 protocol features on the CLI transports: the "id" correlation
    echo, loop-mode admin records, and graceful interrupt draining."""

    @pytest.fixture(scope="class")
    def corpus(self, shared_tiny_annotator, tmp_path_factory):
        from repro.datasets import TableDataset

        dataset = shared_tiny_annotator.trainer.dataset
        subset = TableDataset(
            tables=dataset.tables[:3],
            type_vocab=list(dataset.type_vocab),
            relation_vocab=list(dataset.relation_vocab),
            name="serve-protocol",
        )
        path = tmp_path_factory.mktemp("serve-protocol") / "corpus.jsonl"
        save_dataset_jsonl(subset, path)
        return path

    def test_loop_mode_echoes_ids_in_answers_and_errors(
        self, bundle_dir, corpus, capsys, monkeypatch
    ):
        import io
        import sys as _sys

        table_lines = corpus.read_text().splitlines()[1:]
        lines = []
        for i, line in enumerate(table_lines):
            payload = json.loads(line)
            payload["id"] = f"req-{i}"
            lines.append(json.dumps(payload))
        bad = json.loads(table_lines[0])
        bad["id"] = "bad-route"
        bad["model"] = "nope"
        lines.append(json.dumps(bad))
        monkeypatch.setattr(_sys, "stdin", io.StringIO("\n".join(lines) + "\n"))
        assert main(["serve", str(bundle_dir), "-"]) == 0
        records = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert [r["id"] for r in records[:-1]] == [
            f"req-{i}" for i in range(len(table_lines))
        ]
        # The id is the LAST key of every answer, errors included.
        assert all(list(r)[-1] == "id" for r in records)
        assert records[-1]["id"] == "bad-route"
        assert "no model registered" in records[-1]["error"]

    def test_records_without_id_stay_byte_identical(
        self, bundle_dir, corpus, capsys, monkeypatch
    ):
        """The correlation echo is strictly additive: the same corpus
        without ids serves the exact bytes it did before the feature."""
        import io
        import sys as _sys

        monkeypatch.setattr(_sys, "stdin", io.StringIO(corpus.read_text()))
        assert main(["serve", str(bundle_dir), "-"]) == 0
        plain = capsys.readouterr().out
        assert '"id"' not in plain

    def test_corpus_mode_echoes_ids(self, bundle_dir, corpus, tmp_path):
        tagged = tmp_path / "tagged.jsonl"
        lines = []
        for line in corpus.read_text().splitlines():
            payload = json.loads(line)
            if payload.get("kind") != "dataset":
                payload["id"] = {"client": payload["table_id"]}
            lines.append(json.dumps(payload))
        tagged.write_text("\n".join(lines) + "\n")
        out = tmp_path / "out.jsonl"
        assert main([
            "serve", str(bundle_dir), str(tagged), "--out", str(out),
        ]) == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert all(r["id"] == {"client": r["table_id"]} for r in records)

    def test_loop_mode_admin_stats_health_and_shutdown(
        self, bundle_dir, corpus, capsys, monkeypatch
    ):
        """The stdin loop carries the same admin plane as the socket:
        introspection mid-stream, and {"op": "shutdown"} ends the loop
        before later lines are read."""
        import io
        import sys as _sys

        good = corpus.read_text().splitlines()[1]
        lines = [
            good,
            json.dumps({"op": "health", "id": 1}),
            json.dumps({"op": "stats"}),
            json.dumps({"op": "shutdown"}),
            good,  # after shutdown: must never be served
        ]
        monkeypatch.setattr(_sys, "stdin", io.StringIO("\n".join(lines) + "\n"))
        assert main(["serve", str(bundle_dir), "-"]) == 0
        captured = capsys.readouterr()
        records = [json.loads(line) for line in captured.out.splitlines()]
        assert len(records) == 4  # table + health + stats + shutdown ack
        assert records[0]["columns"]
        assert records[1] == {
            "ok": True, "op": "health", "models": ["default"],
            "live": ["default"], "default": "default", "id": 1,
        }
        assert records[2]["gateway"]["completed"] == 1
        assert records[3] == {"ok": True, "op": "shutdown"}
        assert "served 1 tables" in captured.err

    def test_loop_mode_hot_register_and_unregister(
        self, bundle_dir, corpus, capsys, monkeypatch
    ):
        """Hot registry mutation from the CLI loop (the ROADMAP ask):
        register a second name, route to it, unregister, all without
        restarting `repro serve -`."""
        import io
        import sys as _sys

        good = json.loads(corpus.read_text().splitlines()[1])
        routed = dict(good)
        routed["model"] = "hot"
        lines = [
            json.dumps({"op": "register", "name": "hot",
                        "path": str(bundle_dir)}),
            json.dumps(routed),
            json.dumps({"op": "unregister", "name": "hot"}),
            json.dumps(routed),  # now an unknown route: error answer
        ]
        monkeypatch.setattr(_sys, "stdin", io.StringIO("\n".join(lines) + "\n"))
        assert main(["serve", str(bundle_dir), "-"]) == 0
        records = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert records[0] == {"ok": True, "op": "register", "name": "hot"}
        assert records[1]["columns"]  # served by the hot-registered route
        assert records[2] == {"ok": True, "op": "unregister", "name": "hot"}
        assert "no model registered" in records[3]["error"]

    def test_all_failed_admin_session_exits_1(
        self, bundle_dir, capsys, monkeypatch
    ):
        """Failed admin ops are answers, not work: a session producing
        only admin errors exits 1 like an all-errors table session."""
        import io
        import sys as _sys

        monkeypatch.setattr(
            _sys, "stdin",
            io.StringIO(json.dumps({"op": "register"}) + "\n"),
        )
        assert main(["serve", str(bundle_dir), "-"]) == 1
        captured = capsys.readouterr()
        assert "requires a non-empty 'name'" in captured.out
        assert "no tables" in captured.err

    def test_admin_only_loop_session_exits_cleanly(
        self, bundle_dir, capsys, monkeypatch
    ):
        """A session that only introspects (or just sends a clean remote
        shutdown) did real work: exit 0, not 'no tables were served'."""
        import io
        import sys as _sys

        lines = [json.dumps({"op": "stats"}), json.dumps({"op": "shutdown"})]
        monkeypatch.setattr(_sys, "stdin", io.StringIO("\n".join(lines) + "\n"))
        assert main(["serve", str(bundle_dir), "-"]) == 0
        captured = capsys.readouterr()
        records = [json.loads(line) for line in captured.out.splitlines()]
        assert records[0]["ok"] and records[1] == {"ok": True, "op": "shutdown"}
        assert "no tables" not in captured.err

    def test_listen_port_out_of_range_errors(self, bundle_dir, capsys):
        assert main([
            "serve", str(bundle_dir), "--listen", "127.0.0.1:99999",
        ]) == 1
        assert "0-65535" in capsys.readouterr().err

    def test_loop_mode_no_admin_refuses_ops(
        self, bundle_dir, corpus, capsys, monkeypatch
    ):
        """--no-admin disables the admin plane on the stdin loop too: ops
        get error answers, tables keep being served, and a piped
        {"op": "shutdown"} cannot stop the server."""
        import io
        import sys as _sys

        good = corpus.read_text().splitlines()[1]
        lines = [
            json.dumps({"op": "stats"}),
            json.dumps({"op": "shutdown"}),
            good,  # must still be served: shutdown was refused
        ]
        monkeypatch.setattr(_sys, "stdin", io.StringIO("\n".join(lines) + "\n"))
        assert main(["serve", str(bundle_dir), "-", "--no-admin"]) == 0
        captured = capsys.readouterr()
        records = [json.loads(line) for line in captured.out.splitlines()]
        assert len(records) == 3
        assert "not allowed" in records[0]["error"]
        assert "not allowed" in records[1]["error"]
        assert records[2]["columns"]
        assert "served 1 tables" in captured.err

    def test_flat_cache_hot_register_writes_a_subdirectory(
        self, bundle_dir, corpus, tmp_path, capsys, monkeypatch
    ):
        """Hot-registering a model while serving over a FLAT legacy cache
        layout must not open a second writer on the flat directory: the
        hot model's disk tier roots in its own fingerprint subdirectory,
        and the flat tier stays warm for the original route."""
        import io
        import sys as _sys

        cache_dir = tmp_path / "flat"
        assert main([
            "annotate", str(bundle_dir), str(corpus),
            "--cache-dir", str(cache_dir), "--out", str(tmp_path / "a.jsonl"),
        ]) == 0
        assert list(cache_dir.glob("segment-*.jsonl"))  # flat layout
        capsys.readouterr()
        good = corpus.read_text().splitlines()[1]
        routed = json.loads(good)
        routed["model"] = "hot"
        lines = [
            json.dumps({"op": "register", "name": "hot",
                        "path": str(bundle_dir)}),
            good,                  # default route: a flat-cache disk hit
            json.dumps(routed),    # hot route: computed, cached in subdir
        ]
        monkeypatch.setattr(_sys, "stdin", io.StringIO("\n".join(lines) + "\n"))
        assert main([
            "serve", str(bundle_dir), "-", "--cache-dir", str(cache_dir),
        ]) == 0
        captured = capsys.readouterr()
        records = [json.loads(line) for line in captured.out.splitlines()]
        assert records[0]["ok"] and records[1]["columns"] and records[2]["columns"]
        assert "1 disk hits" in captured.err  # the flat tier stayed warm
        # The proofs/ sidecar (persisted kernel verdicts) is not a cache
        # tier — only fingerprint subdirectories count as writer roots.
        subdirs = [
            p for p in cache_dir.iterdir()
            if p.is_dir() and p.name != "proofs"
        ]
        assert len(subdirs) == 1
        assert list(subdirs[0].glob("segment-*.jsonl"))

    def test_interrupt_drains_and_flushes_cache(
        self, bundle_dir, corpus, tmp_path, capsys, monkeypatch
    ):
        """SIGINT/SIGTERM land as KeyboardInterrupt at a record boundary:
        the gateway drains, the DiskCache is flushed and closed, the exit
        is clean (code 0) — not a mid-batch death."""
        import sys as _sys

        lines = corpus.read_text().splitlines()

        class InterruptingStdin:
            """One good record, then the signal arrives."""

            def __iter__(self):
                yield lines[1] + "\n"
                raise KeyboardInterrupt

        cache_dir = tmp_path / "cache"
        monkeypatch.setattr(_sys, "stdin", InterruptingStdin())
        assert main([
            "serve", str(bundle_dir), "-", "--cache-dir", str(cache_dir),
        ]) == 0
        captured = capsys.readouterr()
        records = [json.loads(line) for line in captured.out.splitlines()]
        assert len(records) == 1 and records[0]["columns"]
        assert "interrupted" in captured.err
        assert "served 1 tables" in captured.err
        # The drained annotation reached the persistent tier: a fresh
        # serve over the same cache answers with zero encoder passes.
        monkeypatch.setattr(
            _sys, "stdin", __import__("io").StringIO(lines[1] + "\n")
        )
        assert main([
            "serve", str(bundle_dir), "-", "--cache-dir", str(cache_dir),
        ]) == 0
        assert "0 encoder passes" in capsys.readouterr().err

    def test_corpus_mode_interrupt_exits_130_after_draining(
        self, bundle_dir, corpus, tmp_path, capsys, monkeypatch
    ):
        """Batch (corpus) serving interrupted mid-stream drains and
        flushes like loop mode but exits 130: partial output must never
        read as success to a pipeline gating on the exit status."""
        import repro.cli as cli_module

        real_iter = cli_module._iter_corpus_records

        def interrupting_iter(path, options):
            iterator = real_iter(path, options)
            yield next(iterator)
            raise KeyboardInterrupt

        monkeypatch.setattr(cli_module, "_iter_corpus_records", interrupting_iter)
        out = tmp_path / "partial.jsonl"
        cache_dir = tmp_path / "cache"
        code = main([
            "serve", str(bundle_dir), str(corpus), "--out", str(out),
            "--cache-dir", str(cache_dir),
        ])
        assert code == 130
        assert "interrupted" in capsys.readouterr().out
        # The in-flight request was drained INTO THE CACHE on the way out
        # (output completeness is what the 130 exit code disclaims).
        from repro.serving import DiskCache

        subdirs = [p for p in cache_dir.iterdir() if p.is_dir()]
        assert len(subdirs) == 1
        assert len(DiskCache(subdirs[0])) == 1

    def test_loop_mode_survives_deeply_nested_line(
        self, bundle_dir, corpus, capsys, monkeypatch
    ):
        """A pathologically nested JSON line is answered with an error
        record; the loop keeps serving (RecursionError must not escape)."""
        import io
        import sys as _sys

        good = corpus.read_text().splitlines()[1]
        stdin = "[" * 100000 + "\n" + good + "\n"
        monkeypatch.setattr(_sys, "stdin", io.StringIO(stdin))
        assert main(["serve", str(bundle_dir), "-"]) == 0
        captured = capsys.readouterr()
        records = [json.loads(line) for line in captured.out.splitlines()]
        assert "nested too deeply" in records[0]["error"]
        assert records[1]["columns"]
        assert "served 1 tables" in captured.err

    def test_graceful_signal_handlers_install_and_restore(self):
        """Inside the scope SIGINT/SIGTERM raise KeyboardInterrupt; the
        previous handlers come back afterwards."""
        import signal

        from repro.cli import _graceful_signals

        before = signal.getsignal(signal.SIGTERM)
        with _graceful_signals():
            handler = signal.getsignal(signal.SIGTERM)
            assert handler is not before
            with pytest.raises(KeyboardInterrupt):
                handler(signal.SIGTERM, None)
        assert signal.getsignal(signal.SIGTERM) is before


class TestAnnotateWideAndErrors:
    def test_wide_annotation_path(self, bundle_dir, sample_csv, capsys):
        code = main([
            "annotate", str(bundle_dir), str(sample_csv),
            "--max-columns", "1",
        ])
        assert code == 0
        assert "predicted types" in capsys.readouterr().out

    def test_wide_similarity_strategy(self, bundle_dir, sample_csv, capsys):
        code = main([
            "annotate", str(bundle_dir), str(sample_csv),
            "--max-columns", "2", "--wide-strategy", "similarity",
        ])
        assert code == 0
        assert "predicted types" in capsys.readouterr().out

    def test_annotate_no_header_csv(self, bundle_dir, shared_tiny_annotator,
                                     tmp_path, capsys):
        from repro.io import write_table_csv

        table = shared_tiny_annotator.trainer.dataset.tables[1]
        path = tmp_path / "raw.csv"
        write_table_csv(table, path, include_header=False)
        assert main(["annotate", str(bundle_dir), str(path), "--no-header"]) == 0

    def test_missing_model_errors(self, sample_csv, tmp_path, capsys):
        code = main(["annotate", str(tmp_path), str(sample_csv)])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_table_errors(self, bundle_dir, tmp_path, capsys):
        code = main(["annotate", str(bundle_dir), str(tmp_path / "nope.csv")])
        assert code == 1

    def test_empty_dataset_train_errors(self, tmp_path, capsys):
        corpus = tmp_path / "empty.jsonl"
        corpus.write_text(json.dumps({
            "kind": "dataset", "version": 1, "name": "x",
            "type_vocab": ["a"], "relation_vocab": [],
        }) + "\n")
        code = main(["train", str(corpus), "--out", str(tmp_path / "m")])
        assert code == 1
        assert "no tables" in capsys.readouterr().err


class TestParser:
    def test_cache_compact(self, tmp_path, capsys):
        from repro.serving import DiskCache

        cache_dir = tmp_path / "cache"
        with DiskCache(cache_dir) as cache:
            for i in range(4):
                cache.put(f"k{i}", {"i": i})
        assert main(["cache", "compact", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "4 live records" in out
        assert DiskCache(cache_dir).get("k2") == {"i": 2}

    def test_cache_compact_with_max_bytes(self, tmp_path, capsys):
        from repro.serving import DiskCache

        cache_dir = tmp_path / "cache"
        with DiskCache(cache_dir, max_segment_records=1) as cache:
            for i in range(6):
                cache.put(f"k{i}", {"i": i})
            total = cache.total_bytes
        code = main(
            ["cache", "compact", str(cache_dir), "--max-bytes", str(total // 2)]
        )
        assert code == 0
        assert "evicted" in capsys.readouterr().out
        survivor = DiskCache(cache_dir)
        assert len(survivor) < 6
        assert survivor.get("k5") == {"i": 5}

    def test_cache_compact_missing_directory(self, tmp_path, capsys):
        code = main(["cache", "compact", str(tmp_path / "nope")])
        assert code == 1
        assert "not a directory" in capsys.readouterr().err

    def test_cache_compact_dry_run_mutates_nothing(self, tmp_path, capsys):
        from repro.serving import DiskCache

        cache_dir = tmp_path / "cache"
        with DiskCache(cache_dir, max_segment_records=2) as cache:
            for i in range(6):
                cache.put(f"k{i}", {"i": i})
        before = sorted((p.name, p.stat().st_size)
                        for p in cache_dir.glob("*.jsonl"))
        assert main(["cache", "compact", str(cache_dir), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would compact" in out
        assert "6 live records" in out
        assert "reclaimable" in out
        after = sorted((p.name, p.stat().st_size)
                       for p in cache_dir.glob("*.jsonl"))
        assert before == after

    def test_cache_compact_skips_live_writer(self, tmp_path, capsys):
        from repro.serving import DiskCache

        cache_dir = tmp_path / "cache"
        live = DiskCache(cache_dir)  # holds the writer lock
        try:
            live.put("k", {"v": 1})
            assert main(["cache", "compact", str(cache_dir)]) == 0
            out = capsys.readouterr().out
            assert "skipped" in out
            assert "writer active" in out
            # The live writer's data was not touched.
            assert live.get("k") == {"v": 1}
        finally:
            live.close()
        # Writer gone: the same command now compacts.
        assert main(["cache", "compact", str(cache_dir)]) == 0
        assert "compacted" in capsys.readouterr().out

    def test_cache_compact_fabric_directory(self, tmp_path, capsys):
        from repro.serving import FabricCache

        cache_dir = tmp_path / "cache"
        live = FabricCache(cache_dir, writer="live")
        try:
            live.put("live-k", {"v": 1})
            with FabricCache(cache_dir, writer="done") as done:
                done.put("done-k", {"v": 2})
            # A live fabric writer does not block compaction — its
            # segments are skipped, the quiescent writer's merge.
            assert main(["cache", "compact", str(cache_dir)]) == 0
            out = capsys.readouterr().out
            assert "compacted" in out
            assert "live-writer segments left in place" in out
        finally:
            live.close()
        with FabricCache(cache_dir, writer="check") as check:
            assert check.get("live-k") == {"v": 1}
            assert check.get("done-k") == {"v": 2}

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "viznet"])

    def test_unknown_corpus_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "imagenet", "--out", "x"])
