"""Tests for table serialization, padding, and the visibility matrix."""

import numpy as np
import pytest

from repro.core import SerializerConfig, TableSerializer, column_visibility, pad_batch
from repro.datasets import Column, Table
from repro.text import build_tokenizer_from_words


class TestValueOrder:
    @pytest.fixture(scope="class")
    def order_tokenizer(self):
        return build_tokenizer_from_words(
            ["aa", "bb", "cc", "dd", "ee", "ff", "gg", "hh"]
        )

    def _tokens(self, tokenizer, order, values, budget=4, seed=0):
        serializer = TableSerializer(
            tokenizer,
            SerializerConfig(max_tokens_per_column=budget, value_order=order,
                             sample_seed=seed),
        )
        table = Table(columns=[Column(values=values)])
        encoded = serializer.serialize_column(table, 0)
        return [tokenizer.vocab.id_to_token(t) for t in encoded.token_ids[1:-1]]

    def test_head_keeps_leading_rows(self, order_tokenizer):
        tokens = self._tokens(order_tokenizer, "head", ["aa", "bb", "cc", "dd", "ee"])
        assert tokens == ["aa", "bb", "cc", "dd"]

    def test_distinct_prefers_unique_values(self, order_tokenizer):
        tokens = self._tokens(
            order_tokenizer, "distinct", ["aa", "aa", "aa", "bb", "cc", "dd"]
        )
        assert tokens == ["aa", "bb", "cc", "dd"]

    def test_distinct_falls_back_to_repeats(self, order_tokenizer):
        tokens = self._tokens(order_tokenizer, "distinct", ["aa", "aa", "aa"], budget=3)
        assert tokens == ["aa", "aa", "aa"]

    def test_random_is_deterministic(self, order_tokenizer):
        values = ["aa", "bb", "cc", "dd", "ee", "ff"]
        a = self._tokens(order_tokenizer, "random", values, budget=6, seed=3)
        b = self._tokens(order_tokenizer, "random", values, budget=6, seed=3)
        assert a == b

    def test_random_seed_changes_order(self, order_tokenizer):
        values = ["aa", "bb", "cc", "dd", "ee", "ff", "gg", "hh"]
        a = self._tokens(order_tokenizer, "random", values, budget=8, seed=1)
        b = self._tokens(order_tokenizer, "random", values, budget=8, seed=2)
        assert sorted(a) == sorted(b)
        assert a != b

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError, match="value_order"):
            SerializerConfig(value_order="tail")


@pytest.fixture
def tokenizer():
    return build_tokenizer_from_words(
        ["happy", "feet", "cars", "george", "miller", "usa", "uk", "film", "director"]
    )


@pytest.fixture
def table():
    return Table(
        columns=[
            Column(values=["happy feet", "cars"], header="film"),
            Column(values=["george miller", "george"], header="director"),
            Column(values=["usa", "uk"], header="country"),
        ],
        table_id="demo",
    )


def make_serializer(tokenizer, **overrides):
    defaults = dict(max_tokens_per_column=8, max_sequence_length=128)
    defaults.update(overrides)
    return TableSerializer(tokenizer, SerializerConfig(**defaults))


class TestTableSerialization:
    def test_cls_per_column_and_final_sep(self, tokenizer, table):
        serializer = make_serializer(tokenizer)
        encoded = serializer.serialize_table(table)
        vocab = tokenizer.vocab
        assert encoded.num_columns == 3
        assert (encoded.token_ids[encoded.cls_positions] == vocab.cls_id).all()
        assert encoded.token_ids[-1] == vocab.sep_id
        assert encoded.column_ids[-1] == -1

    def test_column_ids_track_membership(self, tokenizer, table):
        serializer = make_serializer(tokenizer)
        encoded = serializer.serialize_table(table)
        for col in range(3):
            start = encoded.cls_positions[col]
            assert encoded.column_ids[start] == col

    def test_token_budget_respected(self, tokenizer, table):
        serializer = make_serializer(tokenizer, max_tokens_per_column=2)
        encoded = serializer.serialize_table(table)
        # each column contributes at most 1 (CLS) + 2 tokens
        assert encoded.length <= 3 * 3 + 1

    def test_budget_truncates_not_drops_columns(self, tokenizer, table):
        serializer = make_serializer(tokenizer, max_tokens_per_column=1)
        encoded = serializer.serialize_table(table)
        assert encoded.num_columns == 3

    def test_includes_headers_when_configured(self, tokenizer, table):
        with_headers = make_serializer(tokenizer, include_headers=True)
        without = make_serializer(tokenizer)
        ids_with = with_headers.serialize_table(table).token_ids
        ids_without = without.serialize_table(table).token_ids
        header_id = tokenizer.vocab.token_to_id("film")
        assert header_id in ids_with.tolist()
        assert not np.array_equal(ids_with, ids_without)

    def test_sequence_length_guard(self, tokenizer):
        serializer = make_serializer(tokenizer, max_sequence_length=5)
        wide = Table(columns=[Column(values=["usa"] * 3)] * 4)
        with pytest.raises(ValueError):
            serializer.serialize_table(wide)

    def test_max_columns_within(self, tokenizer):
        serializer = make_serializer(tokenizer, max_tokens_per_column=8)
        # Table 8: 128-token budget, 9 tokens/col -> 14 columns
        assert serializer.max_columns_within(128) == (128 - 1) // 9


class TestSingleColumnSerialization:
    def test_single_column(self, tokenizer, table):
        serializer = make_serializer(tokenizer)
        encoded = serializer.serialize_column(table, 1)
        assert encoded.num_columns == 1
        assert encoded.cls_positions[0] == 0
        assert encoded.token_ids[-1] == tokenizer.vocab.sep_id

    def test_column_pair_has_two_cls_and_middle_sep(self, tokenizer, table):
        serializer = make_serializer(tokenizer)
        encoded = serializer.serialize_column_pair(table, 0, 2)
        vocab = tokenizer.vocab
        assert encoded.num_columns == 2
        assert (encoded.token_ids[encoded.cls_positions] == vocab.cls_id).all()
        sep_count = (encoded.token_ids == vocab.sep_id).sum()
        assert sep_count == 2


class TestPadBatch:
    def test_padding_and_mask(self, tokenizer, table):
        serializer = make_serializer(tokenizer)
        short = serializer.serialize_column(table, 2)
        long = serializer.serialize_table(table)
        ids, mask = pad_batch([short, long], pad_id=tokenizer.vocab.pad_id)
        assert ids.shape == mask.shape == (2, long.length)
        assert mask[0, : short.length].all()
        assert not mask[0, short.length:].any()
        assert (ids[0, short.length:] == tokenizer.vocab.pad_id).all()


class TestVisibility:
    def test_same_column_visible_cross_column_blocked(self, tokenizer, table):
        serializer = make_serializer(tokenizer)
        encoded = serializer.serialize_table(table)
        vis = column_visibility([encoded])[0]
        c0, c1 = encoded.cls_positions[0], encoded.cls_positions[1]
        # CLS of column 1 cannot see CLS/values of column 0 ...
        assert not vis[c1, c0]
        assert not vis[c1, c0 + 1]
        # ... but sees its own column values
        assert vis[c1, c1 + 1]

    def test_sep_is_not_a_global_hub(self, tokenizer, table):
        """A globally-visible [SEP] would leak table context in two hops."""
        serializer = make_serializer(tokenizer)
        encoded = serializer.serialize_table(table)
        vis = column_visibility([encoded])[0]
        sep_position = encoded.length - 1
        assert vis[sep_position, sep_position]
        assert not vis[: sep_position, sep_position].any()
        assert not vis[sep_position, : sep_position].any()

    def test_padding_invisible(self, tokenizer, table):
        serializer = make_serializer(tokenizer)
        short = serializer.serialize_column(table, 2)
        long = serializer.serialize_table(table)
        vis = column_visibility([short, long])
        assert not vis[0, 0, short.length:].any()

    def test_self_visibility_always(self, tokenizer, table):
        serializer = make_serializer(tokenizer)
        encoded = serializer.serialize_table(table)
        vis = column_visibility([encoded])[0]
        idx = np.arange(encoded.length)
        assert vis[idx, idx].all()
