"""The serving subsystem: AnnotationEngine, requests, cache, streaming.

The load-bearing guarantees:

* ``Doduo.annotate`` (single-pass wrapper) is **byte-identical** to the
  legacy four-pass implementation, reconstructed inline from the still-public
  ``predict_*`` entry points — the regression test for the historical double
  forward pass.
* Batched engine annotation is equivalent to sequential annotation on both
  WikiTable-style (multi-label, with relations) and VizNet-style
  (single-label, type-only) models, in table-wise and single-column modes.
* The LRU serialization cache hits on repeated content; ``annotate_stream``
  consumes generators lazily and preserves input order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Doduo, DoduoConfig, DoduoTrainer
from repro.core.trainer import default_relation_pairs
from repro.datasets import Column, Table, generate_viznet_dataset, generate_wikitable_dataset
from repro.nn import TransformerConfig
from repro.serving import (
    AnnotationEngine,
    AnnotationOptions,
    AnnotationRequest,
    EngineConfig,
    LRUCache,
    table_fingerprint,
)
from repro.text import train_wordpiece


def _tiny_encoder_config(vocab_size: int) -> TransformerConfig:
    return TransformerConfig(
        vocab_size=vocab_size,
        hidden_dim=32,
        num_layers=2,
        num_heads=2,
        ffn_dim=64,
        max_position=160,
        num_segments=8,
        dropout=0.0,
    )


def _train(dataset, config: DoduoConfig) -> DoduoTrainer:
    tokenizer = train_wordpiece(dataset.all_cell_text(), vocab_size=700)
    trainer = DoduoTrainer(
        dataset, tokenizer, _tiny_encoder_config(tokenizer.vocab_size), config
    )
    trainer.train()
    return trainer


@pytest.fixture(scope="module")
def wikitable_dataset():
    return generate_wikitable_dataset(num_tables=24, seed=5, max_rows=4)


@pytest.fixture(scope="module")
def viznet_dataset():
    return generate_viznet_dataset(num_tables=30, seed=9)


@pytest.fixture(scope="module")
def wikitable_trainer(wikitable_dataset):
    """Table-wise, multi-label, with relations (the DODUO configuration)."""
    return _train(
        wikitable_dataset,
        DoduoConfig(epochs=1, batch_size=8, keep_best_checkpoint=False),
    )


@pytest.fixture(scope="module")
def viznet_trainer(viznet_dataset):
    """Table-wise, single-label, type task only (the VizNet configuration)."""
    return _train(
        viznet_dataset,
        DoduoConfig(tasks=("type",), multi_label=False, epochs=1,
                    batch_size=8, keep_best_checkpoint=False),
    )


@pytest.fixture(scope="module")
def single_column_trainer(wikitable_dataset):
    """Single-column (DosoloSCol) multi-label model, with relations."""
    return _train(
        wikitable_dataset,
        DoduoConfig(epochs=1, batch_size=8, single_column=True,
                    keep_best_checkpoint=False),
    )


@pytest.fixture(scope="module")
def single_column_viznet_trainer(viznet_dataset):
    """Single-column single-label model (VizNet DosoloSCol)."""
    return _train(
        viznet_dataset,
        DoduoConfig(tasks=("type",), multi_label=False, epochs=1, batch_size=8,
                    single_column=True, keep_best_checkpoint=False),
    )


# ---------------------------------------------------------------------------
# Legacy multi-pass reference (the pre-engine Doduo.annotate, verbatim logic)
# ---------------------------------------------------------------------------

def legacy_annotate(trainer: DoduoTrainer, table: Table):
    """The historical four-pass annotate path, for byte-parity regression."""
    dataset = trainer.dataset
    type_predictions = trainer.predict_types([table])[0]
    if trainer.config.multi_label:
        coltypes = [
            [dataset.type_vocab[k] for k in np.flatnonzero(row)]
            for row in type_predictions
        ]
    else:
        coltypes = [[dataset.type_vocab[int(k)]] for k in type_predictions]

    if trainer.config.single_column:
        encoded = [
            trainer.serializer.serialize_column(table, c)
            for c in range(table.num_columns)
        ]
    else:
        encoded = [trainer.serializer.serialize_table(table)]
    probs = trainer.model.predict_type_probs(encoded, trainer.config.multi_label)
    type_scores = [
        {name: float(probs[c, k]) for k, name in enumerate(dataset.type_vocab)}
        for c in range(table.num_columns)
    ]

    colrels = {}
    if trainer.model.relation_head is not None and table.num_columns > 1:
        pairs = default_relation_pairs(table)
        if trainer.config.single_column:
            pair_encoded = [
                trainer.serializer.serialize_column_pair(table, i, j)
                for i, j in pairs
            ]
            index_pairs = [(b, 0, 1) for b in range(len(pairs))]
        else:
            pair_encoded = [trainer.serializer.serialize_table(table)]
            index_pairs = [(0, i, j) for i, j in pairs]
        rel_probs = trainer.model.predict_relation_probs(
            pair_encoded, index_pairs, trainer.config.multi_label
        )
        for row, pair in enumerate(pairs):
            if trainer.config.multi_label:
                mask = rel_probs[row] >= 0.5
                if not mask.any():
                    mask[rel_probs[row].argmax()] = True
                colrels[pair] = [
                    dataset.relation_vocab[k] for k in np.flatnonzero(mask)
                ]
            else:
                colrels[pair] = [
                    dataset.relation_vocab[int(rel_probs[row].argmax())]
                ]

    embeddings = trainer.column_embeddings(table)
    return coltypes, type_scores, colrels, embeddings


ALL_TRAINERS = [
    "wikitable_trainer",
    "viznet_trainer",
    "single_column_trainer",
    "single_column_viznet_trainer",
]


@pytest.mark.smoke
class TestLegacyParity:
    """Doduo.annotate must reproduce the four-pass outputs bitwise."""

    @pytest.mark.parametrize("trainer_fixture", ALL_TRAINERS)
    def test_annotate_byte_identical(self, trainer_fixture, request):
        trainer = request.getfixturevalue(trainer_fixture)
        annotator = Doduo(trainer)
        for table in trainer.dataset.tables[:5]:
            expected_types, expected_scores, expected_rels, expected_emb = (
                legacy_annotate(trainer, table)
            )
            annotated = annotator.annotate(table)
            assert annotated.coltypes == expected_types
            assert annotated.type_scores == expected_scores
            assert annotated.colrels == expected_rels
            assert np.array_equal(annotated.colemb, expected_emb)

    def test_single_pass_replaces_four(self, wikitable_trainer):
        annotator = Doduo(wikitable_trainer)
        table = wikitable_trainer.dataset.tables[0]
        annotator.annotate(table)  # warm the lazy engine + cache
        before = wikitable_trainer.model.encode_calls
        annotator.annotate(table)
        assert wikitable_trainer.model.encode_calls - before == 1

    def test_coltypes_derived_from_type_scores(self, wikitable_trainer):
        """Regression for the historical double forward pass: the argmax /
        thresholding of ``type_scores`` must be exactly ``coltypes``."""
        annotator = Doduo(wikitable_trainer)
        vocab = list(wikitable_trainer.dataset.type_vocab)
        for table in wikitable_trainer.dataset.tables[:5]:
            annotated = annotator.annotate(table, with_embeddings=False)
            for c, scores in enumerate(annotated.type_scores):
                row = np.array([scores[name] for name in vocab])
                mask = row >= 0.5
                mask[row.argmax()] = True
                derived = [vocab[k] for k in np.flatnonzero(mask)]
                assert annotated.coltypes[c] == derived

    def test_annotate_many_matches_annotate(self, wikitable_trainer):
        annotator = Doduo(wikitable_trainer)
        tables = wikitable_trainer.dataset.tables[:4]
        many = annotator.annotate_many(tables)
        for table, from_many in zip(tables, many):
            single = annotator.annotate(table)
            assert from_many.coltypes == single.coltypes
            assert from_many.type_scores == single.type_scores
            assert from_many.colrels == single.colrels
            assert np.array_equal(from_many.colemb, single.colemb)


@pytest.mark.smoke
class TestBatchedEquivalence:
    """annotate_batch is BYTE-IDENTICAL to sequential annotate across modes
    and label regimes: exact width bucketing means no sequence is ever
    padded beyond the width it would use alone, so there is no tolerance."""

    @pytest.mark.parametrize("trainer_fixture", ALL_TRAINERS)
    def test_batched_vs_sequential_byte_identical(self, trainer_fixture, request):
        trainer = request.getfixturevalue(trainer_fixture)
        engine = AnnotationEngine(trainer, EngineConfig(batch_size=4))
        tables = trainer.dataset.tables[:10]
        batched = engine.annotate_batch(tables)
        assert [r.table.table_id for r in batched] == [t.table_id for t in tables]
        for table, result in zip(tables, batched):
            sequential = AnnotationEngine(trainer).annotate(table)
            assert result.coltypes == sequential.coltypes
            assert result.colrels == sequential.colrels
            assert result.annotated.requested_pairs == (
                sequential.annotated.requested_pairs
            )
            assert result.type_scores == sequential.type_scores  # exact floats
            assert np.array_equal(result.colemb, sequential.colemb)

    def test_one_pass_per_width_bucket(self, wikitable_trainer):
        engine = AnnotationEngine(wikitable_trainer, EngineConfig(batch_size=8))
        tables = wikitable_trainer.dataset.tables[:8]
        widths = {
            wikitable_trainer.serializer.serialize_table(t).length for t in tables
        }
        before = wikitable_trainer.model.encode_calls
        engine.annotate_batch(tables)
        # One forward pass per distinct serialized width — and with exact
        # buckets, zero cross-table padding: every allocated slot is real.
        assert wikitable_trainer.model.encode_calls - before == len(widths)
        assert engine.stats.batches == len(widths)
        assert engine.stats.padded_tokens == engine.stats.real_tokens
        assert engine.stats.padding_waste == 0.0

    def test_length_bucketing_preserves_order(self, wikitable_trainer):
        engine = AnnotationEngine(
            wikitable_trainer, EngineConfig(batch_size=3, length_bucketing=True)
        )
        tables = wikitable_trainer.dataset.tables[:9]
        results = engine.annotate_batch(tables)
        assert [r.table.table_id for r in results] == [t.table_id for t in tables]

    def test_empty_batch(self, wikitable_trainer):
        assert AnnotationEngine(wikitable_trainer).annotate_batch([]) == []


@pytest.mark.smoke
class TestEngineOptions:
    def test_top_k_truncates_scores(self, wikitable_trainer):
        engine = AnnotationEngine(wikitable_trainer)
        table = wikitable_trainer.dataset.tables[0]
        result = engine.annotate(table, top_k=2)
        assert all(len(scores) == 2 for scores in result.type_scores)
        full = engine.annotate(table)
        for trimmed, scores in zip(result.type_scores, full.type_scores):
            expected = dict(
                sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))[:2]
            )
            assert trimmed == expected

    def test_with_flags_disable_products(self, wikitable_trainer):
        engine = AnnotationEngine(wikitable_trainer)
        table = wikitable_trainer.dataset.tables[0]
        result = engine.annotate(table, with_embeddings=False, with_relations=False)
        assert result.colemb is None
        assert result.colrels == {}
        assert result.annotated.requested_pairs == []

    def test_score_threshold_changes_decision(self, wikitable_trainer):
        engine = AnnotationEngine(wikitable_trainer)
        table = wikitable_trainer.dataset.tables[0]
        strict = engine.annotate(table, score_threshold=1.0)
        # With an impossible threshold only the argmax survives.
        assert all(len(names) == 1 for names in strict.coltypes)

    def test_explicit_pairs(self, wikitable_trainer):
        engine = AnnotationEngine(wikitable_trainer)
        table = next(
            t for t in wikitable_trainer.dataset.tables if t.num_columns >= 3
        )
        result = engine.annotate(table, pairs=[(0, 2)])
        assert list(result.colrels) == [(0, 2)]
        assert result.annotated.requested_pairs == [(0, 2)]

    def test_out_of_range_pair_rejected(self, wikitable_trainer):
        engine = AnnotationEngine(wikitable_trainer)
        table = wikitable_trainer.dataset.tables[0]
        with pytest.raises(ValueError, match="out of range"):
            engine.annotate(table, pairs=[(0, table.num_columns)])

    def test_explicit_pairs_without_relation_head_fail_loudly(
        self, viznet_trainer
    ):
        engine = AnnotationEngine(viznet_trainer)  # type-only model
        table = viznet_trainer.dataset.tables[0]
        with pytest.raises(RuntimeError, match="without a relation head"):
            engine.annotate(table, pairs=[(0, 1)])
        # The default (no explicit pairs) still degrades gracefully.
        assert engine.annotate(table).colrels == {}

    def test_stream_rejects_zero_batch_size(self, wikitable_trainer):
        engine = AnnotationEngine(wikitable_trainer)
        with pytest.raises(ValueError, match="batch_size"):
            next(engine.annotate_stream(wikitable_trainer.dataset.tables[:2],
                                        batch_size=0))

    def test_annotate_does_not_mutate_caller_request(self, wikitable_trainer):
        engine = AnnotationEngine(wikitable_trainer)
        request = AnnotationRequest(table=wikitable_trainer.dataset.tables[0])
        first = engine.annotate(request, with_relations=False, top_k=1)
        assert first.colrels == {}
        # The caller's request object must be untouched by the overrides.
        assert request.options == AnnotationOptions()
        assert request.pairs is None
        second = engine.annotate(request)
        assert second.colrels != {}
        assert len(next(iter(second.type_scores))) > 1

    def test_score_threshold_rejected_for_single_label(self, viznet_trainer):
        engine = AnnotationEngine(viznet_trainer)
        table = viznet_trainer.dataset.tables[0]
        with pytest.raises(ValueError, match="multi-label"):
            engine.annotate(table, score_threshold=0.9)

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError, match="top_k"):
            AnnotationOptions(top_k=0)
        with pytest.raises(ValueError, match="score_threshold"):
            AnnotationOptions(score_threshold=1.5)

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError, match="no columns"):
            AnnotationRequest(table=Table(columns=[], table_id="empty"))


@pytest.mark.smoke
class TestSerializationCache:
    def test_repeat_content_hits(self, wikitable_trainer):
        engine = AnnotationEngine(wikitable_trainer, EngineConfig(cache_size=16))
        table = wikitable_trainer.dataset.tables[0]
        first = engine.annotate(table)
        assert not first.from_cache
        assert engine.stats.cache_misses == 1
        second = engine.annotate(table)
        assert second.from_cache
        assert engine.stats.cache_hits == 1
        assert second.coltypes == first.coltypes
        assert np.array_equal(second.colemb, first.colemb)

    def test_fingerprint_is_content_based(self):
        table_a = Table(
            columns=[Column(values=["x", "y"], header="h")], table_id="a"
        )
        table_b = Table(
            columns=[Column(values=["x", "y"], header="h")], table_id="b"
        )
        assert table_fingerprint(table_a) == table_fingerprint(table_b)
        table_c = Table(
            columns=[Column(values=["xy", ""], header="h")], table_id="c"
        )
        assert table_fingerprint(table_a) != table_fingerprint(table_c)

    def test_capacity_eviction(self, wikitable_trainer):
        engine = AnnotationEngine(wikitable_trainer, EngineConfig(cache_size=2))
        tables = wikitable_trainer.dataset.tables[:3]
        engine.annotate_batch(tables)
        assert engine.cache_size == 2  # oldest entry evicted

    def test_cache_disabled(self, wikitable_trainer):
        engine = AnnotationEngine(wikitable_trainer, EngineConfig(cache_size=0))
        table = wikitable_trainer.dataset.tables[0]
        engine.annotate(table)
        second = engine.annotate(table)
        assert not second.from_cache
        assert engine.cache_size == 0
        # No cache -> nothing to hit or miss.
        assert (engine.stats.cache_hits, engine.stats.cache_misses) == (0, 0)

    def test_clear_cache_resets_counters(self, wikitable_trainer):
        engine = AnnotationEngine(wikitable_trainer, EngineConfig(cache_size=8))
        table = wikitable_trainer.dataset.tables[0]
        engine.annotate(table)
        engine.annotate(table)
        assert engine.stats.cache_hits == 1
        engine.clear_cache()
        assert engine.cache_size == 0
        assert (engine.stats.cache_hits, engine.stats.cache_misses) == (0, 0)
        assert not engine.annotate(table).from_cache

    def test_lru_unit(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert (cache.hits, cache.misses) == (3, 1)


@pytest.mark.smoke
class TestStreaming:
    def test_stream_matches_batch_over_generator(self, wikitable_trainer):
        engine = AnnotationEngine(wikitable_trainer, EngineConfig(batch_size=4))
        tables = wikitable_trainer.dataset.tables[:10]
        streamed = list(engine.annotate_stream(iter(tables)))
        assert [r.table.table_id for r in streamed] == [
            t.table_id for t in tables
        ]
        batch_reference = AnnotationEngine(
            wikitable_trainer, EngineConfig(batch_size=4)
        ).annotate_batch(tables)
        for got, want in zip(streamed, batch_reference):
            assert got.coltypes == want.coltypes
            assert got.colrels == want.colrels

    def test_stream_is_lazy(self, wikitable_trainer):
        engine = AnnotationEngine(wikitable_trainer, EngineConfig(batch_size=2))
        pulled = []

        def source():
            for table in wikitable_trainer.dataset.tables[:6]:
                pulled.append(table.table_id)
                yield table

        stream = engine.annotate_stream(source())
        assert pulled == []  # nothing consumed before iteration
        next(stream)
        assert len(pulled) == 2  # exactly one chunk pulled
        assert sum(1 for _ in stream) == 5

    def test_stream_partial_final_chunk(self, viznet_trainer):
        engine = AnnotationEngine(viznet_trainer, EngineConfig(batch_size=4))
        tables = viznet_trainer.dataset.tables[:5]
        results = list(engine.annotate_stream(tables))
        assert len(results) == 5
        # Two drains (4 + 1 tables), each planned into one exact width
        # bucket per distinct serialized length.
        lengths = [
            viznet_trainer.serializer.serialize_table(t).length for t in tables
        ]
        expected = len(set(lengths[:4])) + len(set(lengths[4:]))
        assert engine.stats.batches == expected
        assert engine.stats.padding_waste == 0.0


@pytest.mark.smoke
class TestAnnotatedTableContract:
    def test_top_types_out_of_range(self, wikitable_trainer):
        annotated = Doduo(wikitable_trainer).annotate(
            wikitable_trainer.dataset.tables[0]
        )
        with pytest.raises(IndexError, match="out of range"):
            annotated.top_types(annotated.table.num_columns + 3)
        with pytest.raises(IndexError, match="out of range"):
            annotated.top_types(-1)

    def test_requested_pairs_exposed(self, wikitable_trainer):
        annotator = Doduo(wikitable_trainer)
        for table in wikitable_trainer.dataset.tables[:4]:
            annotated = annotator.annotate(table)
            assert annotated.requested_pairs == default_relation_pairs(table)
            assert sorted(annotated.colrels) == sorted(annotated.requested_pairs)

    def test_unlabeled_table_probes_subject_pairs(self, wikitable_trainer):
        source = wikitable_trainer.dataset.tables[0]
        bare = Table(columns=source.columns, table_id="bare")
        annotated = Doduo(wikitable_trainer).annotate(bare)
        expected = [(0, j) for j in range(1, bare.num_columns)]
        assert annotated.requested_pairs == expected


@pytest.mark.smoke
class TestCacheShimRemoved:
    def test_shim_module_is_gone(self):
        """The deprecated repro.serving.cache shim (PR-3's compatibility
        alias, warned since PR-4 with zero in-repo importers) is deleted;
        the promoted objects live in repro.encoding and stay re-exported
        from repro.serving for convenience."""
        import importlib
        import sys

        sys.modules.pop("repro.serving.cache", None)
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.serving.cache")
        from repro.encoding.cache import LRUCache, table_fingerprint
        from repro.serving import LRUCache as served_lru
        from repro.serving import table_fingerprint as served_fingerprint

        assert served_lru is LRUCache
        assert served_fingerprint is table_fingerprint
