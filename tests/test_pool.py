"""The multi-process serving pool (repro.serving.pool).

The ISSUE-6 acceptance surface:

* a 2-worker pool serves concurrent connections with answers
  **byte-identical** to the single-process `repro serve` stack;
* ``{"op": "stats"}`` on any connection answers the pool-wide merged
  view (per-worker counters summed, plus a ``pool`` section);
* ``{"op": "shutdown"}`` on any connection drains the whole pool;
* a warm cache entry written by one worker is a **disk hit in another
  worker without a single encoder pass** (the cross-process fabric);
* a crashed worker is detected and restarted (bounded, with backoff)
  and the pool keeps serving;
* SIGTERM with live multi-worker, multi-connection traffic drains every
  accepted request before exit (exercised end-to-end through the CLI in
  ``TestPoolCLI``).
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core import save_annotator
from repro.io import table_to_dict
from repro.serving import (
    AnnotationEngine,
    AnnotationOptions,
    AnnotationRequest,
)
from repro.serving.pool import PoolConfig, ServingPool, merge_counters


@pytest.fixture(scope="module")
def bundle(shared_tiny_annotator, tmp_path_factory):
    root = tmp_path_factory.mktemp("pool-bundle")
    save_annotator(shared_tiny_annotator, root / "model")
    return root / "model"


@pytest.fixture(scope="module")
def tables(shared_tiny_annotator):
    return shared_tiny_annotator.trainer.dataset.tables[:6]


def _direct_answers(annotator, tables, options):
    """Direct single-process engine answers, JSON-round-tripped like the
    wire — the byte-identity reference for pool answers."""
    engine = AnnotationEngine(annotator.trainer)
    answers = {}
    for table in tables:
        result = engine.annotate_batch(
            [AnnotationRequest(table=table, options=options)]
        )[0]
        answers[table.table_id] = json.loads(
            json.dumps(result.to_dict(with_embeddings=False))
        )
    return answers


@pytest.fixture(scope="module")
def expected(shared_tiny_annotator, tables):
    return _direct_answers(
        shared_tiny_annotator, tables, AnnotationOptions(with_embeddings=False)
    )


@pytest.fixture(scope="module")
def expected_cli(shared_tiny_annotator, tables):
    """What `repro serve` answers under its CLI defaults (top 3 scores
    per column) — the reference for the CLI-launched pool."""
    return _direct_answers(
        shared_tiny_annotator,
        tables,
        AnnotationOptions(with_embeddings=False, top_k=3),
    )


def _config(bundle, **overrides):
    base = dict(
        specs=[("default", str(bundle))],
        host="127.0.0.1",
        port=0,
        workers=2,
        shutdown_grace=10.0,
    )
    base.update(overrides)
    return PoolConfig(**base)


class Client:
    def __init__(self, address, timeout=60.0):
        self.sock = socket.create_connection(address, timeout=timeout)
        self.stream = self.sock.makefile("rw", encoding="utf-8", newline="\n")

    def send(self, record):
        self.stream.write(json.dumps(record) + "\n")
        self.stream.flush()

    def recv(self):
        line = self.stream.readline()
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    def ask(self, record):
        self.send(record)
        return self.recv()

    def close(self):
        self.stream.close()
        self.sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def _ask_once(address, record):
    with Client(address) as client:
        return client.ask(record)


def _proc_running(pid):
    """True while ``pid`` exists and is not a zombie (an unreaped child
    counts as exited for orphan-protection purposes)."""
    try:
        with open(f"/proc/{pid}/stat") as handle:
            stat = handle.read()
    except OSError:
        return False
    return stat.rpartition(")")[2].split()[0] != "Z"


@pytest.mark.smoke
class TestPoolServing:
    def test_answers_byte_identical_and_stats_merged(
        self, bundle, tables, expected, tmp_path
    ):
        config = _config(bundle, cache_dir=str(tmp_path / "cache"))
        with ServingPool(config) as pool:
            address = pool.address
            # Several connections so the kernel spreads accepts across
            # both workers; answers must be identical either way.
            clients = [Client(address) for _ in range(6)]
            try:
                for c, client in enumerate(clients):
                    for table in tables:
                        record = table_to_dict(table)
                        record["id"] = f"{c}-{table.table_id}"
                        client.send(record)
                for c, client in enumerate(clients):
                    for _ in tables:
                        answer = client.recv()
                        table_id = answer.pop("id").split("-", 1)[1]
                        assert answer == expected[table_id]
                stats = clients[0].ask({"op": "stats", "id": "s"})
            finally:
                for client in clients:
                    client.close()
        assert stats["ok"] and stats["op"] == "stats" and stats["id"] == "s"
        # Merged across workers: totals count every connection's traffic.
        assert stats["gateway"]["completed"] == 6 * len(tables)
        assert stats["server"]["requests"] == 6 * len(tables)
        assert stats["pool"]["workers"] == 2
        assert stats["pool"]["live"] == 2
        assert stats["pool"]["restarts"] == 0
        per_worker = stats["pool"]["per_worker"]
        assert sum(w["requests"] for w in per_worker) == 6 * len(tables)
        assert len({w["pid"] for w in per_worker}) == len(per_worker)
        # Final (post-drain) stats survive the pool's shutdown.
        assert pool.final_stats is not None
        assert pool.final_stats["gateway"]["completed"] == 6 * len(tables)

    def test_shutdown_op_drains_the_whole_pool(self, bundle, tables):
        pool = ServingPool(_config(bundle))
        try:
            address = pool.start()
            with Client(address) as client:
                record = table_to_dict(tables[0])
                record["id"] = "before"
                assert client.ask(record)["id"] == "before"
                answer = client.ask({"op": "shutdown", "id": "bye"})
            assert answer == {"ok": True, "op": "shutdown", "id": "bye"}
            assert pool.wait(timeout=30), "pool did not stop on shutdown op"
            # Dead pool: nothing is listening any more.
            with pytest.raises(OSError):
                socket.create_connection(address, timeout=2).close()
        finally:
            pool.stop()

    def test_warm_entry_crosses_workers_with_zero_encoder_passes(
        self, bundle, tables, expected, tmp_path
    ):
        """The tentpole guarantee: a corpus annotated by one pool run is
        served by a *fresh multi-worker pool* from the shared fabric with
        ZERO encoder passes — entries written by one worker are disk
        hits in every other."""
        cache_dir = str(tmp_path / "cache")
        with ServingPool(_config(bundle, workers=1, cache_dir=cache_dir)) as pool:
            with Client(pool.address) as client:
                for table in tables:
                    record = table_to_dict(table)
                    record["id"] = table.table_id
                    client.send(record)
                for _ in tables:
                    client.recv()
                warm = client.ask({"op": "stats"})
        assert warm["gateway"]["encoder_passes"] > 0  # cold run did work
        with ServingPool(_config(bundle, workers=2, cache_dir=cache_dir)) as pool:
            clients = [Client(pool.address) for _ in range(4)]
            try:
                for client in clients:
                    for table in tables:
                        record = table_to_dict(table)
                        record["id"] = table.table_id
                        client.send(record)
                for client in clients:
                    for table in tables:
                        answer = client.recv()
                        answer.pop("id")
                        assert answer == expected[table.table_id]
                stats = clients[0].ask({"op": "stats"})
            finally:
                for client in clients:
                    client.close()
        assert stats["gateway"]["completed"] == 4 * len(tables)
        assert stats["gateway"]["encoder_passes"] == 0
        # Every answer came from the disk tier or deduped onto a request
        # that did (concurrent identical requests collapse in the queue).
        assert (
            stats["gateway"]["disk_hits"] + stats["gateway"]["dedup_hits"]
            == 4 * len(tables)
        )
        assert stats["gateway"]["disk_hits"] >= len(tables)
        # The previous run's writer is foreign to both new workers: its
        # entries surface as the fabric's remote (cross-writer) hits.
        tiers = stats["gateway"]["disk_tiers"]
        assert sum(tier["remote_hits"] for tier in tiers.values()) > 0

    def test_in_flight_cross_worker_reuse(self, bundle, tables, tmp_path):
        """Within ONE pool run: once any worker annotates a table, the
        other serves it from the fabric — pool-wide encoder passes stay
        at one however many connections repeat it."""
        table = tables[0]
        config = _config(bundle, cache_dir=str(tmp_path / "cache"))
        with ServingPool(config) as pool:
            served_by = set()
            for attempt in range(64):
                record = table_to_dict(table)
                record["id"] = attempt
                answer = _ask_once(pool.address, record)
                assert answer["id"] == attempt
                stats = _ask_once(pool.address, {"op": "stats"})
                served_by = {
                    w["pid"]
                    for w in stats["pool"]["per_worker"]
                    if w["completed"] > 0
                }
                if len(served_by) >= 2:
                    break
                time.sleep(0.05)
            assert len(served_by) >= 2, "kernel never balanced across workers"
            final = _ask_once(pool.address, {"op": "stats"})
        assert final["gateway"]["encoder_passes"] == 1
        tiers = final["gateway"]["disk_tiers"]
        assert sum(tier["remote_hits"] for tier in tiers.values()) >= 1


class TestPoolSupervision:
    def test_crashed_worker_is_restarted_and_pool_keeps_serving(
        self, bundle, tables
    ):
        config = _config(bundle, max_restarts=2, restart_backoff=0.1)
        with ServingPool(config) as pool:
            stats = _ask_once(pool.address, {"op": "stats"})
            pids = sorted(w["pid"] for w in stats["pool"]["per_worker"])
            assert len(pids) == 2
            os.kill(pids[0], signal.SIGKILL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                snapshot = pool.stats()["pool"]
                if snapshot["live"] == 2 and snapshot["restarts"] == 1:
                    new_pids = sorted(
                        w["pid"] for w in snapshot["per_worker"]
                    )
                    if len(new_pids) == 2 and new_pids != pids:
                        break
                time.sleep(0.2)
            else:
                pytest.fail(f"no restart observed: {pool.stats()['pool']}")
            record = table_to_dict(tables[0])
            record["id"] = "post-restart"
            answer = _ask_once(pool.address, record)
            assert answer["id"] == "post-restart"
            assert "columns" in answer

    def test_inherited_fd_sharding_serves(self, bundle, tables):
        """The no-SO_REUSEPORT fallback: parent listens, workers
        accept-race the inherited descriptor."""
        with ServingPool(_config(bundle, sharding="inherit")) as pool:
            for i in range(4):
                record = table_to_dict(tables[i % len(tables)])
                record["id"] = i
                answer = _ask_once(pool.address, record)
                assert answer["id"] == i and "columns" in answer
            stats = _ask_once(pool.address, {"op": "stats"})
            assert stats["pool"]["sharding"] == "inherit"
            assert stats["gateway"]["completed"] == 4

    def test_worker_validation_fails_fast_in_parent(self, tmp_path):
        pool = ServingPool(
            PoolConfig(specs=[("default", str(tmp_path / "nope"))], workers=2)
        )
        with pytest.raises(ValueError, match="bundle"):
            pool.start()

    def test_config_validation(self, bundle):
        with pytest.raises(ValueError, match="workers"):
            PoolConfig(specs=[("default", str(bundle))], workers=0)
        with pytest.raises(ValueError, match="sharding"):
            PoolConfig(specs=[("default", str(bundle))], sharding="magic")

    def test_workers_exit_when_parent_is_killed(self, bundle):
        """Orphan protection: SIGKILL the supervising parent (no drain,
        no cleanup) and the workers must still exit on their own via the
        control-pipe EOF watchdog.  Regression for the fork-start-method
        bug where workers inherited the parent-side pipe ends of every
        sibling, so the EOF never arrived and orphans served forever."""
        env = dict(
            os.environ,
            PYTHONPATH=str(Path(__file__).resolve().parent.parent / "src"),
            PYTHONUNBUFFERED="1",
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve", str(bundle),
                "--listen", "127.0.0.1:0", "--workers", "2",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        worker_pids = []
        try:
            banner = process.stderr.readline()
            match = re.search(r"listening on ([\d.]+):(\d+)", banner)
            assert match, f"unexpected banner: {banner!r}"
            address = (match.group(1), int(match.group(2)))
            stats = _ask_once(address, {"op": "stats"})
            worker_pids = [w["pid"] for w in stats["pool"]["per_worker"]]
            assert len(worker_pids) == 2
            os.kill(process.pid, signal.SIGKILL)
            process.wait(timeout=30)
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                survivors = [p for p in worker_pids if _proc_running(p)]
                if not survivors:
                    break
                time.sleep(0.2)
            else:
                pytest.fail(
                    f"orphaned workers outlived the parent: {survivors}"
                )
        finally:
            for pid in worker_pids:
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:
                    pass
            if process.poll() is None:
                process.kill()
            process.wait(timeout=30)


class TestMergeCounters:
    def test_numeric_leaves_add_and_dicts_recurse(self):
        base = {}
        merge_counters(base, {"a": 1, "nested": {"x": 2.5}, "name": "w0"})
        merge_counters(base, {"a": 2, "nested": {"x": 1.5, "y": 1}, "name": "w1"})
        assert base["a"] == 3
        assert base["nested"] == {"x": 4.0, "y": 1}
        assert base["name"] == "w0"  # strings keep the first value

    def test_booleans_do_not_sum(self):
        base = {}
        merge_counters(base, {"exact": True})
        merge_counters(base, {"exact": True})
        assert base["exact"] is True

    def test_column_hit_rate_recomputed_from_merged_counters(self):
        """Regression: derived ratios must come from the merged raw
        counters, never from summing (or averaging) per-worker ratios.
        Worker A: 4/4 hits (rate 1.0); worker B: 0/12 (rate 0.0).  The
        merged truth is 4 hits in 16 lookups = 0.25 — the naive sum says
        1.0 and the naive mean says 0.5."""
        from repro.serving.pool import _fix_ratios

        base = {}
        for hits, misses, rate in ((4, 0, 1.0), (0, 12, 0.0)):
            merge_counters(
                base,
                {
                    "engines": {
                        "m": {
                            "column_hits": hits,
                            "column_misses": misses,
                            "column_hit_rate": rate,
                            "real_tokens": 10,
                            "padded_tokens": 10,
                            "padding_waste": 0.0,
                        }
                    }
                },
            )
        engine = base["engines"]["m"]
        assert engine["column_hit_rate"] == 1.0  # the broken summed value
        _fix_ratios(base)
        assert engine["column_hit_rate"] == 0.25
        assert engine["padding_waste"] == 0.0

    def test_probe_prune_rate_recomputed_from_merged_counters(self):
        """Same regression shape for the probe counters: worker A planned
        6 / pruned 18 (rate 0.75); worker B planned 16 / pruned 0 (rate
        0.0).  Merged truth is 18 pruned of 40 considered = 0.45 — the
        naive sum says 0.75 and the naive mean says 0.375."""
        from repro.serving.pool import _fix_ratios

        base = {}
        for planned, pruned, rate in ((6, 18, 0.75), (16, 0, 0.0)):
            merge_counters(
                base,
                {
                    "engines": {
                        "m": {
                            "pairs_planned": planned,
                            "pairs_pruned": pruned,
                            "pairs_probed": planned,
                            "probe_prune_rate": rate,
                        }
                    }
                },
            )
        engine = base["engines"]["m"]
        assert engine["probe_prune_rate"] == 0.75  # the broken summed value
        _fix_ratios(base)
        assert engine["probe_prune_rate"] == 0.45
        assert engine["pairs_probed"] == 22

    def test_pool_config_carries_probe_knobs(self, bundle):
        config = _config(bundle, probe_mode="planned", probe_budget=6)
        assert config.probe_mode == "planned"
        assert config.probe_budget == 6

    def test_pool_config_rejects_budget_without_planned_mode(self, bundle):
        """Validation must happen parent-side, not in a dead worker."""
        with pytest.raises(ValueError):
            _config(bundle, probe_budget=6)
        with pytest.raises(ValueError):
            _config(bundle, probe_mode="greedy")

    def test_pool_config_carries_engine_precision_knobs(self, bundle):
        """The worker rebuilds its EngineConfig from PoolConfig, so the
        dtype/kernels/column-cache knobs must survive the pickle."""
        config = _config(
            bundle,
            dtype="float64",
            kernels="fast",
            column_cache_size=32,
            column_cache_persist=True,
        )
        assert config.dtype == "float64"
        assert config.column_cache_size == 32
        assert config.column_cache_persist is True


@pytest.mark.smoke
class TestPoolCLI:
    """`repro serve --listen --workers N` end-to-end, in a subprocess —
    including the SIGTERM drain acceptance test (multiple live
    connections across multiple workers, every accepted request
    answered)."""

    @pytest.fixture()
    def pool_process(self, bundle, tmp_path):
        env = dict(
            os.environ,
            PYTHONPATH=str(Path(__file__).resolve().parent.parent / "src"),
            PYTHONUNBUFFERED="1",
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve", str(bundle),
                "--listen", "127.0.0.1:0", "--workers", "2",
                "--cache-dir", str(tmp_path / "cache"),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = process.stderr.readline()
            match = re.search(
                r"listening on ([\d.]+):(\d+) \((\d+) workers, (\w+) sharding\)",
                banner,
            )
            assert match, f"unexpected banner: {banner!r}"
            assert match.group(3) == "2"
            yield process, (match.group(1), int(match.group(2)))
        finally:
            if process.poll() is None:
                process.kill()
            process.wait(timeout=30)

    def test_sigterm_drains_multiworker_multiconnection(
        self, pool_process, tables, expected_cli
    ):
        process, address = pool_process
        # Warm-up proves the pool serves, and gives a requests baseline.
        with Client(address) as client:
            record = table_to_dict(tables[0])
            record["id"] = "warm"
            answer = client.ask(record)
            assert answer.pop("id") == "warm"
            assert answer == expected_cli[tables[0].table_id]
            base = client.ask({"op": "stats"})["server"]["requests"]
        # Live connections, one in-flight request each.
        clients = [Client(address) for _ in range(5)]
        try:
            for i, client in enumerate(clients):
                record = table_to_dict(tables[i % len(tables)])
                record["id"] = f"drain-{i}"
                client.send(record)
            # The drain contract covers ACCEPTED records: wait until the
            # pool has accepted all five before delivering the signal.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                now = _ask_once(address, {"op": "stats"})["server"]["requests"]
                if now - base >= len(clients):
                    break
                time.sleep(0.1)
            else:
                pytest.fail("pool never accepted the in-flight requests")
            process.send_signal(signal.SIGTERM)
            for i, client in enumerate(clients):
                answer = client.recv()  # asserts the line arrived
                assert answer.pop("id") == f"drain-{i}"
                assert answer == expected_cli[tables[i % len(tables)].table_id]
        finally:
            for client in clients:
                client.close()
        assert process.wait(timeout=30) == 0
        epilogue = process.stderr.read()
        assert "over 2 workers" in epilogue
        # 1 warm-up + 5 drained requests, all in the FINAL merged stats.
        assert "served 6 tables" in epilogue

    def test_workers_requires_listen(self, bundle):
        from repro.cli import main

        assert main(["serve", str(bundle), "-", "--workers", "2"]) == 1
