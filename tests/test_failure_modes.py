"""Failure-injection tests: malformed inputs must fail loudly and precisely.

The library is meant to be pointed at arbitrary user data (CSV exports,
hand-built tables), so the error behaviour at the boundaries is part of the
public contract: wrong label vocabulary -> KeyError naming the label;
over-long serialization -> ValueError with the remedy; empty structures ->
defined results, not crashes.
"""

import numpy as np
import pytest

from repro.core import (
    Doduo,
    DoduoConfig,
    DoduoTrainer,
    SerializerConfig,
    TableSerializer,
)
from repro.datasets import Column, Table, TableDataset, split_dataset
from repro.nn import TransformerConfig
from repro.text import train_wordpiece


@pytest.fixture(scope="module")
def tokenizer():
    return train_wordpiece(
        ["alpha beta gamma delta", "one two three four"], vocab_size=200
    )


def tiny_config(vocab_size):
    return TransformerConfig(
        vocab_size=vocab_size, hidden_dim=16, num_layers=1, num_heads=2,
        ffn_dim=32, max_position=64, num_segments=4, dropout=0.0,
    )


def labelled_table(type_label="t0"):
    return Table(
        columns=[Column(values=["alpha", "beta"], type_labels=[type_label])],
        table_id="x",
    )


class TestVocabularyErrors:
    def test_unknown_type_label_raises_keyerror_with_name(self, tokenizer):
        dataset = TableDataset(
            tables=[labelled_table("mystery")], type_vocab=["t0"]
        )
        config = DoduoConfig(tasks=("type",), multi_label=False, epochs=1)
        trainer = DoduoTrainer(
            dataset, tokenizer, tiny_config(tokenizer.vocab_size), config
        )
        with pytest.raises(KeyError, match="mystery"):
            trainer.train()

    def test_column_without_label_raises_in_single_label_mode(self, tokenizer):
        table = Table(columns=[Column(values=["alpha"])], table_id="bad")
        dataset = TableDataset(tables=[table], type_vocab=["t0"])
        config = DoduoConfig(tasks=("type",), multi_label=False, epochs=1)
        trainer = DoduoTrainer(
            dataset, tokenizer, tiny_config(tokenizer.vocab_size), config
        )
        with pytest.raises(ValueError, match="no type label"):
            trainer.train()

    def test_dataset_rejects_unknown_lookups(self):
        dataset = TableDataset(tables=[], type_vocab=["a"], relation_vocab=["r"])
        with pytest.raises(KeyError, match="unknown type"):
            dataset.type_id("b")
        with pytest.raises(KeyError, match="unknown relation"):
            dataset.relation_id("s")


class TestSerializerLimits:
    def test_too_many_columns_raises_with_remedy(self, tokenizer):
        serializer = TableSerializer(
            tokenizer,
            SerializerConfig(max_tokens_per_column=8, max_sequence_length=16),
        )
        table = Table(columns=[
            Column(values=["alpha beta gamma"]) for _ in range(4)
        ])
        with pytest.raises(ValueError, match="split the table"):
            serializer.serialize_table(table)

    def test_empty_table_serializes_to_sep_only(self, tokenizer):
        serializer = TableSerializer(tokenizer, SerializerConfig())
        encoded = serializer.serialize_table(Table(columns=[]))
        assert encoded.num_columns == 0
        assert encoded.length == 1  # just [SEP]

    def test_column_with_empty_values(self, tokenizer):
        serializer = TableSerializer(tokenizer, SerializerConfig())
        encoded = serializer.serialize_table(
            Table(columns=[Column(values=["", "", ""])])
        )
        # [CLS] for the column plus the trailing [SEP]
        assert encoded.length == 2
        assert encoded.num_columns == 1


class TestAnnotatorBoundaries:
    @pytest.fixture(scope="class")
    def annotator(self, shared_tiny_annotator):
        return shared_tiny_annotator

    def test_annotate_dataframe_rejects_empty(self, annotator):
        with pytest.raises(ValueError, match="non-empty"):
            annotator.annotate_dataframe([])

    def test_annotate_dataframe_rejects_ragged(self, annotator):
        with pytest.raises(ValueError, match="same number"):
            annotator.annotate_dataframe([["a", "b"], ["c"]])

    def test_annotate_single_column_table_has_no_relations(self, annotator):
        table = Table(columns=[Column(values=["alpha", "beta"])])
        result = annotator.annotate(table)
        assert result.colrels == {}
        assert len(result.coltypes) == 1

    def test_annotate_handles_unseen_characters(self, annotator):
        table = Table(columns=[Column(values=["Ωmega ★value", "ℵleph"])])
        result = annotator.annotate(table)
        assert len(result.coltypes) == 1  # degrades to [UNK], never crashes


class TestSplitBoundaries:
    def test_split_fractions_must_leave_training_data(self):
        dataset = TableDataset(tables=[labelled_table()], type_vocab=["t0"])
        with pytest.raises(ValueError, match="< 1"):
            split_dataset(dataset, valid_fraction=0.5, test_fraction=0.5)

    def test_encoder_rejects_overlong_sequence(self, tokenizer):
        from repro.nn import TransformerEncoder

        config = tiny_config(tokenizer.vocab_size)
        encoder = TransformerEncoder(config, np.random.default_rng(0))
        tokens = np.zeros((1, config.max_position + 1), dtype=np.int64)
        with pytest.raises(ValueError, match="max_position"):
            encoder(tokens)

    def test_encoder_rejects_non_2d_input(self, tokenizer):
        from repro.nn import TransformerEncoder

        config = tiny_config(tokenizer.vocab_size)
        encoder = TransformerEncoder(config, np.random.default_rng(0))
        with pytest.raises(ValueError, match="batch"):
            encoder(np.zeros(5, dtype=np.int64))

    def test_extra_embedding_shape_checked(self, tokenizer):
        from repro.nn import Tensor, TransformerEncoder

        config = tiny_config(tokenizer.vocab_size)
        encoder = TransformerEncoder(config, np.random.default_rng(0))
        tokens = np.zeros((1, 4), dtype=np.int64)
        bad = Tensor(np.zeros((1, 4, config.hidden_dim + 1), dtype=np.float32))
        with pytest.raises(ValueError, match="extra_embedding"):
            encoder(tokens, extra_embedding=bad)
