"""Tests for the BPE tokenizer (repro.text.bpe)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DoduoConfig, DoduoTrainer, SerializerConfig, TableSerializer
from repro.datasets import generate_viznet_dataset
from repro.nn import TransformerConfig
from repro.text import BpeTokenizer, train_bpe


CORPUS = [
    "the quick brown fox jumps over the lazy dog",
    "the quick brown cat sleeps under the warm sun",
    "lower lowest slower slowest",
    "walking talking walking talking",
] * 3


@pytest.fixture(scope="module")
def tokenizer():
    return train_bpe(CORPUS, vocab_size=300)


class TestTraining:
    def test_learns_merges(self, tokenizer):
        assert tokenizer.merges
        assert tokenizer.vocab_size <= 300

    def test_frequent_words_become_single_tokens(self, tokenizer):
        pieces = tokenizer.tokenize_word("the")
        assert pieces == ["the</w>"]

    def test_unseen_word_still_segmentable(self, tokenizer):
        pieces = tokenizer.tokenize_word("low")  # subword of 'lower'
        assert pieces  # segments into learned pieces or characters

    def test_min_pair_frequency_limits_merges(self):
        few = train_bpe(["ab ab", "cd"], vocab_size=100, min_pair_frequency=10)
        assert few.merges == []


class TestEncodeDecode:
    def test_roundtrip_on_corpus_words(self, tokenizer):
        for text in ("the quick brown fox", "walking talking"):
            assert tokenizer.decode(tokenizer.encode(text)) == text

    def test_special_tokens_skipped_in_decode(self, tokenizer):
        ids = [tokenizer.vocab.cls_id] + tokenizer.encode("the dog") + [
            tokenizer.vocab.sep_id
        ]
        assert tokenizer.decode(ids) == "the dog"

    def test_unseen_characters_map_to_unk(self, tokenizer):
        ids = tokenizer.encode("Ωmega")
        assert tokenizer.vocab.unk_id in ids

    @given(st.lists(
        st.sampled_from(sorted({w for line in CORPUS for w in line.split()})),
        min_size=1, max_size=8,
    ))
    @settings(max_examples=50, deadline=None)
    def test_corpus_vocabulary_roundtrips(self, tokenizer, words):
        """Any sequence of corpus words round-trips exactly (unseen
        character-position pairs map to [UNK] by design, so the property is
        over the training vocabulary, as for real BPE tokenizers)."""
        text = " ".join(words)
        assert tokenizer.decode(tokenizer.encode(text)) == text


class TestPersistence:
    def test_save_load_roundtrip(self, tokenizer, tmp_path):
        path = tmp_path / "bpe.json"
        tokenizer.save(path)
        back = BpeTokenizer.load(path)
        for text in ("the quick fox", "slower walking"):
            assert back.encode(text) == tokenizer.encode(text)
        assert back.vocab.cls_id == tokenizer.vocab.cls_id

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text('{"format": "wordpiece-v1", "tokens": [], "merges": []}')
        with pytest.raises(ValueError, match="bpe-v1"):
            BpeTokenizer.load(path)


class TestDropInCompatibility:
    """The whole pipeline must run unchanged on the BPE tokenizer."""

    def test_serializer_accepts_bpe(self):
        dataset = generate_viznet_dataset(num_tables=6, seed=1)
        tokenizer = train_bpe(dataset.all_cell_text(), vocab_size=400)
        serializer = TableSerializer(tokenizer, SerializerConfig())
        encoded = serializer.serialize_table(dataset.tables[0])
        assert encoded.num_columns == dataset.tables[0].num_columns
        assert encoded.token_ids[0] == tokenizer.vocab.cls_id

    def test_trainer_fine_tunes_with_bpe(self):
        dataset = generate_viznet_dataset(num_tables=20, seed=2)
        tokenizer = train_bpe(dataset.all_cell_text(), vocab_size=500)
        config = TransformerConfig(
            vocab_size=tokenizer.vocab_size, hidden_dim=16, num_layers=1,
            num_heads=2, ffn_dim=32, max_position=128, num_segments=6,
            dropout=0.0,
        )
        trainer = DoduoTrainer(
            dataset, tokenizer, config,
            DoduoConfig(tasks=("type",), multi_label=False, epochs=2,
                        batch_size=8, keep_best_checkpoint=False),
        )
        history = trainer.train()
        losses = history.task_losses["type"]
        assert losses[-1] < losses[0]
