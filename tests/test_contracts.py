"""Golden fixture tests for the ``repro check`` contract rules.

Each rule gets a triad: a minimal violating snippet that must flag, a
minimal clean snippet that must pass, and a suppressed snippet proving
the suppression works *and* that the reason string is mandatory.
"""

from __future__ import annotations

import json
from pathlib import Path
from textwrap import dedent

import pytest

from repro.analysis.contracts import (
    Project,
    SourceFile,
    all_rules,
    collect_project,
    run_check,
)
from repro.analysis.contracts.runner import main as check_main


def run_snippets(tmp_path, files, rules=None):
    """Write ``{relpath: source}`` under ``tmp_path`` and check it."""
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(dedent(text), encoding="utf-8")
    project = collect_project([tmp_path], base=tmp_path)
    return run_check(project, rule_ids=rules)


def rule_ids(result):
    return [f.rule_id for f in result.findings]


# ----------------------------------------------------------------------
# stats-merge
# ----------------------------------------------------------------------

STATS_COMMON = """
    class EngineStats:
        column_hits: int = 0
        column_misses: int = 0

        @property
        def column_hit_rate(self) -> float:
            total = self.column_hits + self.column_misses
            return self.column_hits / total if total else 0.0

    def merge_counters(base, extra):
        for key, value in extra.items():
            base[key] = base.get(key, 0) + value
        return base
"""


class TestStatsMergeRule:
    def test_missing_recompute_flags(self, tmp_path):
        result = run_snippets(
            tmp_path,
            {"stats.py": STATS_COMMON + "\n    def _fix_ratios(node):\n        pass\n"},
            rules=["stats-merge"],
        )
        assert rule_ids(result) == ["stats-merge"]
        assert "column_hit_rate" in result.findings[0].message

    def test_missing_raw_input_flags(self, tmp_path):
        fixer = """
    def _fix_ratios(node):
        if "column_hit_rate" in node:
            hits = node.get("column_hits") or 0
            node["column_hit_rate"] = hits
"""
        result = run_snippets(
            tmp_path, {"stats.py": STATS_COMMON + fixer}, rules=["stats-merge"]
        )
        assert rule_ids(result) == ["stats-merge"]
        assert "column_misses" in result.findings[0].message

    def test_clean_recompute_passes(self, tmp_path):
        fixer = """
    def _fix_ratios(node):
        if "column_hit_rate" in node:
            hits = node.get("column_hits") or 0
            total = hits + (node.get("column_misses") or 0)
            node["column_hit_rate"] = hits / total if total else 0.0
"""
        result = run_snippets(
            tmp_path, {"stats.py": STATS_COMMON + fixer}, rules=["stats-merge"]
        )
        assert result.findings == []

    def test_summed_ratio_flags(self, tmp_path):
        source = """
    def merge_stats(base, extra):
        base["column_hit_rate"] = base["column_hit_rate"] + extra["column_hit_rate"]
        return base
"""
        result = run_snippets(tmp_path, {"m.py": source}, rules=["stats-merge"])
        assert rule_ids(result) == ["stats-merge"]
        assert "never be" in result.findings[0].message or "sum" in result.findings[0].message

    def test_gateway_drops_ratio_flags(self, tmp_path):
        source = """
    class EngineStats:
        padded_tokens: int = 0
        real_tokens: int = 0

        @property
        def padding_waste(self) -> float:
            return 0.0

    class GatewayStats:
        def to_dict(self):
            return {}
"""
        result = run_snippets(tmp_path, {"g.py": source}, rules=["stats-merge"])
        assert any("padding_waste" in f.message for f in result.findings)

    def test_service_counter_without_gateway_total_flags(self, tmp_path):
        source = """
    class ServiceStats:
        submitted: int = 0
        brand_new_counter: int = 0

    class GatewayStats:
        submitted: int = 0

        def to_dict(self):
            return {}
"""
        result = run_snippets(tmp_path, {"g.py": source}, rules=["stats-merge"])
        assert any("brand_new_counter" in f.message for f in result.findings)

    def test_suppression_requires_reason(self, tmp_path):
        bad = STATS_COMMON.replace(
            "def column_hit_rate(self) -> float:",
            "def column_hit_rate(self) -> float:  # repro: allow[stats-merge]",
        ) + "\n    def _fix_ratios(node):\n        pass\n"
        result = run_snippets(tmp_path, {"stats.py": bad}, rules=["stats-merge"])
        # Reason-less marker: the original finding survives AND the
        # malformed suppression is itself a finding.
        assert sorted(rule_ids(result)) == ["stats-merge", "suppression-syntax"]

    def test_suppression_with_reason_suppresses(self, tmp_path):
        ok = STATS_COMMON.replace(
            "def column_hit_rate(self) -> float:",
            "def column_hit_rate(self) -> float:  "
            "# repro: allow[stats-merge] -- fixture exercises suppression",
        ) + "\n    def _fix_ratios(node):\n        pass\n"
        result = run_snippets(tmp_path, {"stats.py": ok}, rules=["stats-merge"])
        assert result.findings == []
        assert [f.rule_id for f in result.suppressed] == ["stats-merge"]


# ----------------------------------------------------------------------
# fingerprint-fold
# ----------------------------------------------------------------------


class TestFingerprintFoldRule:
    def test_unclassified_field_flags(self, tmp_path):
        source = """
    class EngineConfig:
        dtype: str = "float32"
        mystery_knob: int = 0

    class AnnotationEngine:
        @property
        def model_fingerprint(self) -> str:
            return str(self.config.dtype)
"""
        result = run_snippets(tmp_path, {"e.py": source}, rules=["fingerprint-fold"])
        assert rule_ids(result) == ["fingerprint-fold"]
        assert "mystery_knob" in result.findings[0].message

    def test_direct_fold_passes(self, tmp_path):
        source = """
    class EngineConfig:
        dtype: str = "float32"
        mystery_knob: int = 0

    class AnnotationEngine:
        @property
        def model_fingerprint(self) -> str:
            return str((self.config.dtype, self.config.mystery_knob))
"""
        result = run_snippets(tmp_path, {"e.py": source}, rules=["fingerprint-fold"])
        assert result.findings == []

    def test_indirect_fold_through_init_passes(self, tmp_path):
        # The probe_planner pattern: the fingerprint reads self.planner,
        # which __init__ builds from config fields under a config guard.
        source = """
    class EngineConfig:
        probe_mode: str = "exhaustive"
        probe_budget: int = 0

    class AnnotationEngine:
        def __init__(self):
            self.planner = None
            if self.config.probe_mode == "planned":
                self.planner = Planner(self.config.probe_budget)

        @property
        def model_fingerprint(self) -> str:
            return str(self.planner)
"""
        result = run_snippets(tmp_path, {"e.py": source}, rules=["fingerprint-fold"])
        assert result.findings == []

    def test_missing_fingerprint_flags(self, tmp_path):
        source = """
    class EngineConfig:
        dtype: str = "float32"
"""
        result = run_snippets(tmp_path, {"e.py": source}, rules=["fingerprint-fold"])
        assert rule_ids(result) == ["fingerprint-fold"]

    def test_suppressed_with_reason(self, tmp_path):
        source = """
    class EngineConfig:
        dtype: str = "float32"
        mystery_knob: int = 0  # repro: allow[fingerprint-fold] -- proven byte-neutral in fixture

    class AnnotationEngine:
        @property
        def model_fingerprint(self) -> str:
            return str(self.config.dtype)
"""
        result = run_snippets(tmp_path, {"e.py": source}, rules=["fingerprint-fold"])
        assert result.findings == []
        assert len(result.suppressed) == 1


# ----------------------------------------------------------------------
# async-blocking
# ----------------------------------------------------------------------


class TestAsyncBlockingRule:
    def test_sleep_in_coroutine_flags(self, tmp_path):
        source = """
    import time

    async def handler():
        time.sleep(1.0)
"""
        result = run_snippets(tmp_path, {"s.py": source}, rules=["async-blocking"])
        assert rule_ids(result) == ["async-blocking"]

    def test_cache_write_in_coroutine_flags(self, tmp_path):
        source = """
    async def handler(self, key, value):
        self.result_cache.put(key, value)
"""
        result = run_snippets(tmp_path, {"s.py": source}, rules=["async-blocking"])
        assert rule_ids(result) == ["async-blocking"]
        assert "executor" in result.findings[0].message

    def test_executor_pattern_passes(self, tmp_path):
        # Blocking work wrapped in a nested sync def handed to an
        # executor is the sanctioned pattern.
        source = """
    import asyncio
    import time

    async def handler(loop):
        def work():
            time.sleep(0.1)
            return open("/tmp/x").read()
        return await loop.run_in_executor(None, work)
"""
        result = run_snippets(tmp_path, {"s.py": source}, rules=["async-blocking"])
        assert result.findings == []

    def test_sync_function_not_flagged(self, tmp_path):
        source = """
    import time

    def handler():
        time.sleep(1.0)
"""
        result = run_snippets(tmp_path, {"s.py": source}, rules=["async-blocking"])
        assert result.findings == []

    def test_suppressed_with_reason(self, tmp_path):
        source = """
    import time

    async def handler():
        time.sleep(0.0)  # repro: allow[async-blocking] -- zero-delay yield shim in fixture
"""
        result = run_snippets(tmp_path, {"s.py": source}, rules=["async-blocking"])
        assert result.findings == []
        assert len(result.suppressed) == 1


# ----------------------------------------------------------------------
# lock-discipline
# ----------------------------------------------------------------------

LOCKED_CLASS = """
    import threading

    class Registry:
        def __init__(self):
            self._lock = threading.Lock()
            self._value = 0

        def set(self, value):
            with self._lock:
                self._value = value
"""


class TestLockDisciplineRule:
    def test_unlocked_read_flags(self, tmp_path):
        source = LOCKED_CLASS + """
        def get(self):
            return self._value
"""
        result = run_snippets(
            tmp_path, {"registry.py": source}, rules=["lock-discipline"]
        )
        assert rule_ids(result) == ["lock-discipline"]
        assert "_value" in result.findings[0].message

    def test_locked_read_passes(self, tmp_path):
        source = LOCKED_CLASS + """
        def get(self):
            with self._lock:
                return self._value
"""
        result = run_snippets(
            tmp_path, {"registry.py": source}, rules=["lock-discipline"]
        )
        assert result.findings == []

    def test_helper_called_under_lock_passes(self, tmp_path):
        # Call-graph propagation: a private helper whose every internal
        # call site holds the lock is itself lock-held.
        source = LOCKED_CLASS + """
        def bump(self):
            with self._lock:
                self._step()

        def _step(self):
            self._value += 1
"""
        result = run_snippets(
            tmp_path, {"registry.py": source}, rules=["lock-discipline"]
        )
        assert result.findings == []

    def test_helper_also_called_unlocked_flags(self, tmp_path):
        source = LOCKED_CLASS + """
        def bump(self):
            with self._lock:
                self._step()

        def sneaky(self):
            self._step()

        def _step(self):
            self._value += 1
"""
        result = run_snippets(
            tmp_path, {"registry.py": source}, rules=["lock-discipline"]
        )
        assert rule_ids(result) == ["lock-discipline"]

    def test_out_of_scope_file_ignored(self, tmp_path):
        source = LOCKED_CLASS + """
        def get(self):
            return self._value
"""
        result = run_snippets(
            tmp_path, {"other.py": source}, rules=["lock-discipline"]
        )
        assert result.findings == []

    def test_suppressed_with_reason(self, tmp_path):
        source = LOCKED_CLASS + """
        def get(self):
            return self._value  # repro: allow[lock-discipline] -- benign torn read in fixture
"""
        result = run_snippets(
            tmp_path, {"registry.py": source}, rules=["lock-discipline"]
        )
        assert result.findings == []
        assert len(result.suppressed) == 1


# ----------------------------------------------------------------------
# determinism-hygiene
# ----------------------------------------------------------------------


class TestDeterminismRule:
    def test_set_iteration_flags(self, tmp_path):
        source = """
    def build():
        out = []
        for item in {"b", "a"}:
            out.append(item)
        return out
"""
        result = run_snippets(
            tmp_path, {"serving/mod.py": source}, rules=["determinism-hygiene"]
        )
        assert rule_ids(result) == ["determinism-hygiene"]

    def test_sorted_set_passes(self, tmp_path):
        source = """
    def build():
        out = []
        for item in sorted({"b", "a"}):
            out.append(item)
        return out
"""
        result = run_snippets(
            tmp_path, {"serving/mod.py": source}, rules=["determinism-hygiene"]
        )
        assert result.findings == []

    def test_import_time_rng_flags(self, tmp_path):
        source = """
    import numpy as np

    NOISE = np.random.rand(4)
"""
        result = run_snippets(
            tmp_path, {"nn/mod.py": source}, rules=["determinism-hygiene"]
        )
        assert rule_ids(result) == ["determinism-hygiene"]

    def test_rng_inside_function_passes(self, tmp_path):
        source = """
    import numpy as np

    def noise():
        return np.random.rand(4)
"""
        result = run_snippets(
            tmp_path, {"nn/mod.py": source}, rules=["determinism-hygiene"]
        )
        assert result.findings == []

    def test_wall_clock_in_cache_key_flags(self, tmp_path):
        source = """
    import time

    def cache_key(table):
        return f"{table}-{time.time()}"
"""
        result = run_snippets(
            tmp_path, {"serving/mod.py": source}, rules=["determinism-hygiene"]
        )
        assert rule_ids(result) == ["determinism-hygiene"]

    def test_out_of_scope_file_ignored(self, tmp_path):
        source = """
    def build():
        return [item for item in {"b", "a"}]
"""
        result = run_snippets(
            tmp_path, {"tools/mod.py": source}, rules=["determinism-hygiene"]
        )
        assert result.findings == []

    def test_suppressed_with_reason(self, tmp_path):
        source = """
    def build():
        out = []
        # repro: allow[determinism-hygiene] -- order proven irrelevant in fixture
        for item in {"b", "a"}:
            out.append(item)
        return out
"""
        result = run_snippets(
            tmp_path, {"serving/mod.py": source}, rules=["determinism-hygiene"]
        )
        assert result.findings == []
        assert len(result.suppressed) == 1


# ----------------------------------------------------------------------
# unused-import
# ----------------------------------------------------------------------


class TestUnusedImportRule:
    def test_unused_import_flags(self, tmp_path):
        source = """
    import os

    def f():
        return 1
"""
        result = run_snippets(tmp_path, {"m.py": source}, rules=["unused-import"])
        assert rule_ids(result) == ["unused-import"]

    def test_string_annotation_counts_as_use(self, tmp_path):
        # `from __future__ import annotations` code quotes its hints;
        # the rule must read them.
        source = """
    from __future__ import annotations

    from concurrent.futures import Future

    def submit() -> "Future[int]":
        raise NotImplementedError
"""
        result = run_snippets(tmp_path, {"m.py": source}, rules=["unused-import"])
        assert result.findings == []

    def test_dunder_all_counts_as_use(self, tmp_path):
        source = """
    from os.path import join

    __all__ = ["join"]
"""
        result = run_snippets(tmp_path, {"m.py": source}, rules=["unused-import"])
        assert result.findings == []

    def test_init_py_exempt(self, tmp_path):
        source = """
    from .mod import thing
"""
        result = run_snippets(
            tmp_path,
            {"pkg/__init__.py": source, "pkg/mod.py": "    thing = 1\n"},
            rules=["unused-import"],
        )
        assert result.findings == []

    def test_dead_shim_flags(self, tmp_path):
        shim = '''
    """Legacy re-export."""

    from os.path import join

    __all__ = ["join"]
'''
        result = run_snippets(
            tmp_path,
            {"shim.py": shim, "user.py": "    import os\n\n    print(os.sep)\n"},
            rules=["unused-import"],
        )
        assert any("re-export shim" in f.message for f in result.findings)

    def test_imported_shim_passes(self, tmp_path):
        shim = '''
    """Legacy re-export."""

    from os.path import join

    __all__ = ["join"]
'''
        result = run_snippets(
            tmp_path,
            {"shim.py": shim, "user.py": "    from shim import join\n\n    print(join)\n"},
            rules=["unused-import"],
        )
        assert not any("re-export shim" in f.message for f in result.findings)

    def test_suppressed_with_reason(self, tmp_path):
        source = """
    import os  # repro: allow[unused-import] -- re-exported for doctest namespaces
"""
        result = run_snippets(tmp_path, {"m.py": source}, rules=["unused-import"])
        assert result.findings == []
        assert len(result.suppressed) == 1


# ----------------------------------------------------------------------
# Framework mechanics
# ----------------------------------------------------------------------


class TestFramework:
    def test_every_rule_registered(self):
        ids = {r.rule_id for r in all_rules()}
        assert {
            "stats-merge",
            "fingerprint-fold",
            "async-blocking",
            "lock-discipline",
            "determinism-hygiene",
            "unused-import",
        } <= ids

    def test_unknown_suppression_rule_id_flags(self, tmp_path):
        source = """
    import os  # repro: allow[no-such-rule] -- typo'd rule id

    print(os.sep)
"""
        result = run_snippets(tmp_path, {"m.py": source})
        assert any(
            f.rule_id == "suppression-syntax" and "unknown rule" in f.message
            for f in result.findings
        )

    def test_comment_line_suppression_covers_next_line(self, tmp_path):
        source = """
    # repro: allow[unused-import] -- kept for interface parity in fixture
    import os
"""
        result = run_snippets(tmp_path, {"m.py": source}, rules=["unused-import"])
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_parse_error_is_a_finding(self, tmp_path):
        result = run_snippets(tmp_path, {"broken.py": "    def broken(:\n"})
        assert any(f.rule_id == "parse-error" for f in result.findings)

    def test_findings_carry_path_and_line(self, tmp_path):
        result = run_snippets(
            tmp_path, {"m.py": "    import os\n"}, rules=["unused-import"]
        )
        finding = result.findings[0]
        assert finding.path == "m.py"
        assert finding.line == 1
        assert "m.py:1:" in finding.render()

    def test_json_output_shape(self, tmp_path, capsys):
        (tmp_path / "m.py").write_text("import os\n", encoding="utf-8")
        code = check_main(["--format", "json", str(tmp_path / "m.py")])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["version"] == 1
        assert payload["findings"][0]["rule"] == "unused-import"
        assert "unused-import" in payload["rules"]

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("import os\n\nprint(os.sep)\n", encoding="utf-8")
        assert check_main([str(clean)]) == 0
        assert check_main(["--rule", "no-such-rule", str(clean)]) == 2
        capsys.readouterr()

    def test_repro_cli_wires_check(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        clean = tmp_path / "clean.py"
        clean.write_text("import os\n\nprint(os.sep)\n", encoding="utf-8")
        assert cli_main(["check", str(clean)]) == 0
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import os\n", encoding="utf-8")
        assert cli_main(["check", str(dirty)]) == 1
        capsys.readouterr()
