"""Tests for embedding-space diagnostics (repro.analysis.embedding_quality)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import nearest_neighbor_purity, silhouette_score


def two_blobs(separation=10.0, n=20, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(0.0, 0.5, size=(n, 3))
    b = rng.normal(separation, 0.5, size=(n, 3))
    points = np.concatenate([a, b])
    labels = np.array([0] * n + [1] * n)
    return points, labels


class TestSilhouette:
    def test_well_separated_blobs_near_one(self):
        points, labels = two_blobs(separation=50.0)
        assert silhouette_score(points, labels) > 0.9

    def test_random_labels_near_zero(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(60, 4))
        labels = rng.integers(0, 3, 60)
        assert abs(silhouette_score(points, labels)) < 0.2

    def test_mixed_labels_negative(self):
        """Labels that cut across both blobs score far below true labels."""
        points, labels = two_blobs(separation=50.0)
        wrong = np.tile([0, 1], len(labels) // 2)  # alternates within blobs
        assert silhouette_score(points, wrong) < 0.0
        assert silhouette_score(points, wrong) < silhouette_score(points, labels)

    def test_separation_orders_scores(self):
        far, labels = two_blobs(separation=30.0)
        near, _ = two_blobs(separation=1.0)
        assert silhouette_score(far, labels) > silhouette_score(near, labels)

    def test_singleton_cluster_contributes_zero(self):
        points = np.array([[0.0], [0.1], [10.0]])
        labels = [0, 0, 1]
        score = silhouette_score(points, labels)
        assert 0.0 < score <= 1.0  # two real points positive, singleton 0

    def test_single_label_raises(self):
        points = np.zeros((4, 2))
        with pytest.raises(ValueError, match="two distinct"):
            silhouette_score(points, [0, 0, 0, 0])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="align"):
            silhouette_score(np.zeros((3, 2)), [0, 1])

    @given(seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_bounded(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(20, 3))
        labels = rng.integers(0, 4, 20)
        if len(np.unique(labels)) < 2:
            return
        assert -1.0 <= silhouette_score(points, labels) <= 1.0


class TestNeighborPurity:
    def test_separated_blobs_perfect(self):
        points, labels = two_blobs(separation=50.0)
        assert nearest_neighbor_purity(points, labels, k=3) == 1.0

    def test_random_labels_near_chance(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(200, 3))
        labels = rng.integers(0, 2, 200)
        purity = nearest_neighbor_purity(points, labels, k=5)
        assert 0.3 < purity < 0.7

    def test_k_bounds_checked(self):
        points = np.zeros((5, 2))
        labels = [0, 0, 1, 1, 1]
        with pytest.raises(ValueError, match="k must be"):
            nearest_neighbor_purity(points, labels, k=5)
        with pytest.raises(ValueError, match="k must be"):
            nearest_neighbor_purity(points, labels, k=0)

    def test_purity_in_unit_interval(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(30, 2))
        labels = rng.integers(0, 3, 30)
        purity = nearest_neighbor_purity(points, labels, k=4)
        assert 0.0 <= purity <= 1.0
