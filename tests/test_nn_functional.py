"""Tests for fused functional ops (softmax, losses, layer norm, ...)."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F

from helpers import gradcheck, numerical_gradient, rng


class TestGelu:
    def test_values(self):
        x = Tensor(np.array([0.0, 1.0, -1.0], dtype=np.float32))
        out = F.gelu(x).data
        assert out[0] == pytest.approx(0.0, abs=1e-6)
        assert out[1] == pytest.approx(0.8412, abs=1e-3)
        assert out[2] == pytest.approx(-0.1588, abs=1e-3)

    def test_gradcheck(self):
        gradcheck(F.gelu, rng(0).uniform(-2, 2, size=(3, 5)))


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(rng(1).standard_normal((4, 7)).astype(np.float32))
        out = F.softmax(x).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4), rtol=1e-5)

    def test_shift_invariance(self):
        x = rng(2).standard_normal((3, 5)).astype(np.float32)
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-5)

    def test_gradcheck(self):
        gradcheck(lambda t: F.softmax(t, axis=-1), rng(3).standard_normal((2, 4)))

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(rng(4).standard_normal((3, 6)).astype(np.float32))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-5
        )

    def test_log_softmax_gradcheck(self):
        gradcheck(lambda t: F.log_softmax(t, axis=-1), rng(5).standard_normal((2, 4)))


class TestLogSumExp:
    def test_value(self):
        x = Tensor(np.array([[0.0, np.log(3.0)]], dtype=np.float32))
        assert F.logsumexp(x, axis=-1).data[0] == pytest.approx(np.log(4.0), rel=1e-5)

    def test_keepdims(self):
        x = Tensor(np.zeros((2, 3), dtype=np.float32))
        assert F.logsumexp(x, axis=1, keepdims=True).shape == (2, 1)

    def test_gradcheck(self):
        gradcheck(lambda t: F.logsumexp(t, axis=-1), rng(6).standard_normal((3, 4)))

    def test_large_values_stable(self):
        x = Tensor(np.array([[1000.0, 1000.0]], dtype=np.float32))
        out = F.logsumexp(x, axis=-1).data
        assert np.isfinite(out).all()


class TestCrossEntropy:
    def test_uniform_logits(self):
        logits = Tensor(np.zeros((2, 4), dtype=np.float32), requires_grad=True)
        loss = F.cross_entropy_logits(logits, np.array([0, 3]))
        assert loss.item() == pytest.approx(np.log(4.0), rel=1e-5)

    def test_perfect_prediction_low_loss(self):
        logits_data = np.full((1, 3), -20.0, dtype=np.float32)
        logits_data[0, 1] = 20.0
        loss = F.cross_entropy_logits(Tensor(logits_data, requires_grad=True), np.array([1]))
        assert loss.item() < 1e-4

    def test_gradient_matches_softmax_minus_onehot(self):
        data = rng(7).standard_normal((3, 5)).astype(np.float32)
        labels = np.array([0, 2, 4])
        logits = Tensor(data.copy(), requires_grad=True)
        F.cross_entropy_logits(logits, labels).backward()
        probs = np.exp(data - data.max(axis=1, keepdims=True))
        probs /= probs.sum(axis=1, keepdims=True)
        expected = probs.copy()
        expected[np.arange(3), labels] -= 1.0
        expected /= 3
        np.testing.assert_allclose(logits.grad, expected, atol=1e-5)

    def test_ignore_index(self):
        data = rng(8).standard_normal((4, 3)).astype(np.float32)
        labels = np.array([0, -100, 1, -100])
        logits = Tensor(data.copy(), requires_grad=True)
        loss = F.cross_entropy_logits(logits, labels, ignore_index=-100)
        loss.backward()
        # ignored rows receive zero gradient
        np.testing.assert_allclose(logits.grad[1], 0.0, atol=1e-7)
        np.testing.assert_allclose(logits.grad[3], 0.0, atol=1e-7)

    def test_all_ignored_raises(self):
        logits = Tensor(np.zeros((2, 3), dtype=np.float32), requires_grad=True)
        with pytest.raises(ValueError):
            F.cross_entropy_logits(logits, np.array([-1, -1]), ignore_index=-1)

    def test_3d_logits(self):
        data = rng(9).standard_normal((2, 3, 4)).astype(np.float32)
        labels = rng(9).integers(0, 4, size=(2, 3))
        logits = Tensor(data, requires_grad=True)
        loss = F.cross_entropy_logits(logits, labels)
        loss.backward()
        assert logits.grad.shape == (2, 3, 4)


class TestBinaryCrossEntropy:
    def test_matches_reference(self):
        data = rng(10).standard_normal((3, 4)).astype(np.float32)
        targets = (rng(10).random((3, 4)) > 0.5).astype(np.float64)
        logits = Tensor(data, requires_grad=True)
        loss = F.binary_cross_entropy_logits(logits, targets)
        probs = 1.0 / (1.0 + np.exp(-data.astype(np.float64)))
        expected = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs)).mean()
        assert loss.item() == pytest.approx(expected, rel=1e-4)

    def test_gradient(self):
        data = rng(11).standard_normal((2, 3)).astype(np.float32)
        targets = np.array([[1, 0, 1], [0, 1, 0]], dtype=np.float64)
        logits = Tensor(data.copy(), requires_grad=True)
        F.binary_cross_entropy_logits(logits, targets).backward()
        sig = 1.0 / (1.0 + np.exp(-data.astype(np.float64)))
        np.testing.assert_allclose(logits.grad, (sig - targets) / 6, atol=1e-5)

    def test_sample_mask(self):
        data = rng(12).standard_normal((3, 2)).astype(np.float32)
        targets = np.ones((3, 2))
        mask = np.array([True, False, True])
        logits = Tensor(data.copy(), requires_grad=True)
        F.binary_cross_entropy_logits(logits, targets, sample_mask=mask).backward()
        np.testing.assert_allclose(logits.grad[1], 0.0, atol=1e-8)

    def test_extreme_logits_stable(self):
        logits = Tensor(np.array([[1000.0, -1000.0]], dtype=np.float32), requires_grad=True)
        loss = F.binary_cross_entropy_logits(logits, np.array([[1.0, 0.0]]))
        assert np.isfinite(loss.item())
        assert loss.item() < 1e-6


class TestLayerNorm:
    def test_output_statistics(self):
        x = Tensor(rng(13).standard_normal((4, 8)).astype(np.float32))
        gamma = Tensor(np.ones(8, dtype=np.float32))
        beta = Tensor(np.zeros(8, dtype=np.float32))
        out = F.layer_norm(x, gamma, beta).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gradcheck_input(self):
        gamma = Tensor(np.full(4, 1.5, dtype=np.float32))
        beta = Tensor(np.full(4, 0.5, dtype=np.float32))
        gradcheck(lambda t: F.layer_norm(t, gamma, beta), rng(14).standard_normal((3, 4)))

    def test_affine_parameter_grads(self):
        x = Tensor(rng(15).standard_normal((2, 4)).astype(np.float32))
        gamma = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        beta = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        F.layer_norm(x, gamma, beta).sum().backward()
        assert gamma.grad.shape == (4,)
        np.testing.assert_allclose(beta.grad, [2.0, 2.0, 2.0, 2.0])


class TestEmbeddingLookup:
    def test_forward_and_scatter_backward(self):
        weight = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3), requires_grad=True)
        indices = np.array([[1, 1], [3, 0]])
        out = F.embedding_lookup(weight, indices)
        assert out.shape == (2, 2, 3)
        out.sum().backward()
        np.testing.assert_allclose(weight.grad[1], [2.0, 2.0, 2.0])
        np.testing.assert_allclose(weight.grad[2], [0.0, 0.0, 0.0])


class TestDropout:
    def test_eval_is_identity(self):
        x = Tensor(np.ones((5, 5), dtype=np.float32))
        out = F.dropout(x, 0.5, rng(16), training=False)
        assert out is x

    def test_training_scales_kept_units(self):
        x = Tensor(np.ones((100, 100), dtype=np.float32))
        out = F.dropout(x, 0.5, rng(17), training=True).data
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 0.4 < (out > 0).mean() < 0.6

    def test_zero_rate_identity(self):
        x = Tensor(np.ones(3, dtype=np.float32))
        assert F.dropout(x, 0.0, rng(18), training=True) is x


class TestAttentionBias:
    def test_mask_to_bias(self):
        mask = np.array([[True, False]])
        bias = F.attention_bias_from_mask(mask)
        assert bias.shape == (1, 1, 1, 2)
        assert bias[0, 0, 0, 0] == 0.0
        assert bias[0, 0, 0, 1] <= -1e8

    def test_visibility_bias(self):
        vis = np.zeros((1, 3, 3), dtype=bool)
        vis[0, 0, 0] = True
        bias = F.visibility_bias(vis)
        assert bias.shape == (1, 1, 3, 3)
        assert bias[0, 0, 0, 0] == 0.0
        assert bias[0, 0, 0, 1] <= -1e8
