"""Regression tests for the true positives ``repro check`` surfaced.

The checker's first run over the real tree found three latent bugs —
each gets a behavioral pin here, independent of the static rule that
caught it:

* ``EngineConfig.waste_budget`` changed output bytes (near-width
  packing) without folding into the model fingerprint, so a packed
  engine shared cache entries and routes with an exact one.
* ``ModelRegistry.default_name`` read ``_default_name`` without the
  registry lock (torn read against register/set_default/unregister).
* ``ServingPool.stop`` read ``_started`` outside the pool lock while
  ``start`` writes it under the lock.
"""

from __future__ import annotations

import threading

import pytest

from repro.serving import AnnotationEngine, EngineConfig
from repro.serving.pool import PoolConfig, ServingPool


@pytest.fixture(scope="module")
def trainer(shared_tiny_annotator):
    return shared_tiny_annotator.trainer


class TestWasteBudgetFingerprint:
    def test_packed_engine_rekeys_fingerprint(self, trainer):
        exact = AnnotationEngine(trainer)
        packed = AnnotationEngine(trainer, EngineConfig(waste_budget=64))
        assert exact.model_fingerprint != packed.model_fingerprint

    def test_default_stays_marker_free(self, trainer):
        # Persisted cache keys from before the fold must stay valid:
        # waste_budget=0 produces the legacy digest.
        legacy = trainer.annotation_fingerprint()
        assert trainer.annotation_fingerprint(waste_budget=0) == legacy
        exact = AnnotationEngine(trainer, EngineConfig(waste_budget=0))
        assert exact.model_fingerprint == legacy

    def test_budget_folds_by_value(self, trainer):
        a = trainer.annotation_fingerprint(waste_budget=32)
        b = trainer.annotation_fingerprint(waste_budget=64)
        assert a != b
        assert a != trainer.annotation_fingerprint()
        # Memoized per (dtype, probe, waste_budget).
        assert trainer.annotation_fingerprint(waste_budget=32) == a

    def test_budget_and_dtype_markers_compose(self, trainer):
        both = trainer.annotation_fingerprint(dtype="float64", waste_budget=32)
        assert both != trainer.annotation_fingerprint(dtype="float64")
        assert both != trainer.annotation_fingerprint(waste_budget=32)


class _RecordingLock:
    """Context-manager lock probe: counts acquisitions."""

    def __init__(self) -> None:
        self._inner = threading.RLock()
        self.acquisitions = 0

    def __enter__(self):
        self.acquisitions += 1
        return self._inner.__enter__()

    def __exit__(self, *exc):
        return self._inner.__exit__(*exc)

    def acquire(self, *args, **kwargs):
        self.acquisitions += 1
        return self._inner.acquire(*args, **kwargs)

    def release(self):
        return self._inner.release()


class TestRegistryDefaultNameLock:
    def test_default_name_reads_under_lock(self):
        from repro.serving.registry import ModelRegistry

        registry = ModelRegistry()
        probe = _RecordingLock()
        registry._lock = probe
        before = probe.acquisitions
        assert registry.default_name is None
        assert probe.acquisitions > before

    def test_default_name_tracks_registration(self, trainer):
        from repro.serving.registry import ModelRegistry

        registry = ModelRegistry()
        assert registry.default_name is None
        registry.register("tiny", trainer)
        assert registry.default_name == "tiny"


class TestPoolStopStartedLock:
    def test_stop_before_start_is_safe_and_collects_nothing(self):
        pool = ServingPool(PoolConfig(specs=[("default", "nowhere")]))
        pool.stop()  # never started: must not raise, must not merge stats
        assert pool.final_stats is None

    def test_stop_is_idempotent_without_start(self):
        pool = ServingPool(PoolConfig(specs=[("default", "nowhere")]))
        pool.stop()
        pool.stop()
        assert pool.final_stats is None

    def test_stop_snapshots_started_under_lock(self):
        pool = ServingPool(PoolConfig(specs=[("default", "nowhere")]))
        probe = _RecordingLock()
        pool._lock = probe
        pool.stop()
        assert probe.acquisitions > 0
