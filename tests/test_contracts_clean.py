"""Tier-1 gate: ``repro check src/`` is clean on the real tree.

This is the local mirror of the CI ``check`` job — zero unsuppressed
findings over the actual codebase, every suppression justified, and the
acceptance property that deleting a stats-merge input line would fail
the build.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.contracts import (
    Project,
    SourceFile,
    collect_project,
    run_check,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def real_project() -> "Project":
    return collect_project([REPO_ROOT / "src"], base=REPO_ROOT)


def test_real_tree_has_zero_unsuppressed_findings():
    result = run_check(real_project())
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.findings == [], f"repro check found:\n{rendered}"


def test_every_suppression_in_tree_carries_a_reason():
    for src in real_project():
        for sup in src.suppressions:
            assert sup.reason.strip(), (
                f"{src.rel}:{sup.line}: suppression for [{sup.rule_id}] "
                "has no reason"
            )


def test_deleting_a_merge_input_line_fails_the_stats_merge_rule():
    """The PR-7/PR-8 regression class, pinned: removing the line that
    feeds one raw counter into ``_fix_ratios`` must flag."""
    pool_path = REPO_ROOT / "src" / "repro" / "serving" / "pool.py"
    pool = pool_path.read_text(encoding="utf-8")
    doomed = '        real = node.get("real_tokens") or 0\n'
    assert doomed in pool, "pool.py merge line moved; update this test"
    munged = pool.replace(doomed, "").replace(
        "((padded - real) / padded)", "(padded / padded)"
    )
    files = [
        SourceFile.from_text(
            munged, path=pool_path, rel="src/repro/serving/pool.py"
        )
    ]
    for name in ("engine.py", "gateway.py", "queue.py"):
        path = REPO_ROOT / "src" / "repro" / "serving" / name
        files.append(
            SourceFile.load(path, rel=f"src/repro/serving/{name}")
        )
    result = run_check(Project(files), rule_ids=["stats-merge"])
    assert any(
        f.rule_id == "stats-merge" and "real_tokens" in f.message
        for f in result.findings
    ), "stats-merge did not catch the deleted merge input"


def test_unsuppressing_the_registration_imports_would_flag():
    """The tree's only suppressions are real: stripping them re-surfaces
    the findings, proving the gate inspects what it claims to."""
    runner_path = (
        REPO_ROOT / "src" / "repro" / "analysis" / "contracts" / "runner.py"
    )
    text = runner_path.read_text(encoding="utf-8")
    stripped = text.replace("# repro: allow[unused-import]", "# was:")
    files = [
        SourceFile.from_text(
            stripped, path=runner_path, rel="runner.py"
        )
    ]
    result = run_check(Project(files), rule_ids=["unused-import"])
    assert any(f.rule_id == "unused-import" for f in result.findings)
