"""Probe planning (repro.core.probe) and its serving integration.

The load-bearing guarantees:

* ``probe_mode="exhaustive"`` and explicit ``AnnotationRequest.pairs`` are
  byte-identical to the pre-planner engine — the planner only changes
  *which* pairs are paid for.
* A planned probe of pair set S is byte-identical to explicitly requesting
  S (trainer level and engine level).
* The probe policy folds into the annotation fingerprint (exhaustive stays
  marker-free, so persisted cache keys survive), and the new pair counters
  merge across workers from raw counts, never from summed ratios.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ProbeBudget, ProbePlan, ProbePlanner
from repro.core.probe import relation_type_compatibility, subject_type_priors
from repro.core.trainer import default_relation_pairs, validate_relation_pairs
from repro.datasets import Column, Table
from repro.datasets.tables import TableDataset
from repro.serving import AnnotationEngine, AnnotationRequest, EngineConfig
from repro.serving.engine import EngineStats


def entity_column(seed: int, num_rows: int = 6) -> Column:
    names = [
        "Alice Munro", "Bruno Schulz", "Clarice Lispector", "Denis Johnson",
        "Elena Ferrante", "Fernando Pessoa", "Grace Paley", "Halldor Laxness",
    ]
    return Column(values=[names[(seed + r) % len(names)] for r in range(num_rows)])


def year_column(start: int, num_rows: int = 6) -> Column:
    return Column(values=[str(start + r) for r in range(num_rows)])


def entity_table(num_cols: int = 6) -> Table:
    return Table(
        columns=[entity_column(3 * c) for c in range(num_cols)],
        table_id=f"entities{num_cols}",
    )


class TestProbeBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProbeBudget(max_pairs=0)
        with pytest.raises(ValueError):
            ProbeBudget(per_column=-1)
        with pytest.raises(ValueError):
            ProbeBudget(min_similarity=1.5)

    def test_describe_is_canonical(self):
        a = ProbeBudget(max_pairs=8)
        b = ProbeBudget(max_pairs=8)
        assert a.describe() == b.describe()
        assert "max_pairs=8" in a.describe()
        assert ProbeBudget(max_pairs=9).describe() != a.describe()


class TestProbePlanner:
    def test_budget_caps_selected_pairs(self):
        planner = ProbePlanner(ProbeBudget(max_pairs=4))
        plan = planner.plan(entity_table(8))
        assert len(plan.pairs) == 4
        assert plan.candidates == 28
        assert plan.pruned == 24

    def test_plan_is_deterministic_and_sorted(self):
        table = entity_table(7)
        plans = [ProbePlanner(ProbeBudget(max_pairs=5)).plan(table) for _ in range(3)]
        assert plans[0] == plans[1] == plans[2]
        assert list(plans[0].pairs) == sorted(plans[0].pairs)

    def test_single_column_table_has_nothing_to_probe(self):
        plan = ProbePlanner().plan(Table(columns=[entity_column(0)]))
        assert plan == ProbePlan(pairs=(), candidates=0, pruned=0, pinned=0)

    def test_numeric_numeric_pairs_pruned(self):
        table = Table(
            columns=[entity_column(0), year_column(1900), year_column(1950)],
            table_id="nums",
        )
        pairs = ProbePlanner().plan(table).pairs
        assert (1, 2) not in pairs
        allowed = ProbePlanner(ProbeBudget(numeric_numeric=True)).plan(table)
        assert (1, 2) in allowed.pairs

    def test_duplicate_columns_pruned(self):
        dup = entity_column(0)
        table = Table(
            columns=[dup, Column(values=list(dup.values)), entity_column(4)],
            table_id="dups",
        )
        pairs = ProbePlanner().plan(table).pairs
        assert (0, 1) not in pairs

    def test_gold_pairs_pinned_over_budget(self):
        table = Table(
            columns=[entity_column(0), year_column(1900), year_column(1950)],
            table_id="gold",
            # Reverse direction and a numeric-numeric endpoint pair: both
            # survive anyway — gold questions bypass prefilters and budget.
            relation_labels={(2, 1): ["rel"], (0, 1): ["rel"]},
        )
        plan = ProbePlanner(ProbeBudget(max_pairs=1)).plan(table)
        assert plan.pinned == 2
        assert set(plan.pairs) == {(0, 1), (2, 1)}

    def test_reversed_gold_duplicates_collapse(self):
        table = Table(
            columns=[entity_column(0), entity_column(2), entity_column(5)],
            table_id="rev",
            relation_labels={(0, 1): ["rel"], (1, 0): ["rel"]},
        )
        plan = ProbePlanner().plan(table)
        assert (0, 1) in plan.pairs
        assert (1, 0) not in plan.pairs
        assert plan.pinned == 1

    def test_per_column_refinement_covers_every_column(self):
        table = entity_table(6)
        plan = ProbePlanner(ProbeBudget(max_pairs=6)).plan(table)
        covered = {c for pair in plan.pairs for c in pair}
        assert covered == set(range(6))

    def test_counters_accumulate(self):
        planner = ProbePlanner(ProbeBudget(max_pairs=3))
        planner.plan(entity_table(5))
        planner.plan(entity_table(6))
        assert planner.tables_planned == 2
        assert planner.pairs_considered == 10 + 15
        assert planner.pairs_planned == 6
        assert planner.pairs_pruned == planner.pairs_considered - 6

    def test_plan_cache_hits_on_repeated_content(self):
        planner = ProbePlanner(ProbeBudget(max_pairs=3))
        table = entity_table(6)
        first = planner.plan(table)
        again = planner.plan(
            Table(columns=table.columns, table_id="other-id")
        )
        assert again == first
        assert planner._plan_cache.hits == 1
        # Counters still account the cached plan's work.
        assert planner.tables_planned == 2

    def test_relation_labels_change_plan_cache_key(self):
        planner = ProbePlanner(ProbeBudget(max_pairs=2))
        bare = entity_table(5)
        labeled = Table(
            columns=bare.columns,
            table_id=bare.table_id,
            relation_labels={(3, 4): ["rel"]},
        )
        assert (3, 4) not in planner.plan(bare).pairs
        assert (3, 4) in planner.plan(labeled).pairs

    def test_min_similarity_floor(self):
        table = Table(
            columns=[entity_column(0), year_column(1900), entity_column(1)],
            table_id="floor",
        )
        strict = ProbePlanner(ProbeBudget(min_similarity=0.99)).plan(table)
        # Entity vs year share almost no hashed grams: the floor prunes
        # everything except near-identical profiles.
        assert (0, 1) not in strict.pairs

    def test_fingerprint_tag_tracks_budget(self):
        a = ProbePlanner(ProbeBudget(max_pairs=8)).fingerprint_tag()
        b = ProbePlanner(ProbeBudget(max_pairs=8)).fingerprint_tag()
        c = ProbePlanner(ProbeBudget(max_pairs=16)).fingerprint_tag()
        assert a == b != c
        assert a.startswith("planned(")


class TestTypeCompatibilityPrefilter:
    @pytest.fixture()
    def dataset(self):
        table = Table(
            columns=[
                Column(values=["Lisbon", "Oslo"], type_labels=["city"]),
                Column(values=["Portugal", "Norway"], type_labels=["country"]),
            ],
            table_id="cities",
            relation_labels={(0, 1): ["located_in"]},
        )
        return TableDataset(
            tables=[table],
            type_vocab=["city", "country", "year"],
            relation_vocab=["located_in"],
        )

    def test_observed_endpoint_types_only(self, dataset):
        compat = relation_type_compatibility(dataset)
        assert (0, 1) in compat  # city -> country
        assert (1, 0) not in compat  # directional
        assert (0, 2) not in compat

    def test_subject_type_priors(self, dataset):
        priors = subject_type_priors(dataset)
        city = dataset.type_vocab.index("city")
        country = dataset.type_vocab.index("country")
        assert priors[city] == 1.0  # city columns always subjects here
        assert priors[country] == 0.0  # country columns only attributes
        assert dataset.type_vocab.index("year") not in priors  # never seen

    def test_subject_priors_outrank_proximity(self, dataset):
        """A high-subject-prior column a little further away must beat a
        low-prior column right next to the target.  Columns 1 and 2 carry
        identical values, so model-free scoring cannot tell them apart —
        only the learned prior on their predicted types can."""
        twin = entity_column(0)
        table = Table(
            columns=[
                year_column(1900),
                twin,
                Column(values=list(twin.values)),
                entity_column(5),
            ],
            table_id="prior-vs-proximity",
        )
        city = dataset.type_vocab.index("city")
        country = dataset.type_vocab.index("country")
        type_probs = np.array(
            [[0.0, 0.1, 0.9], [0.9, 0.1, 0.0], [0.1, 0.9, 0.0], [0.1, 0.9, 0.0]]
        )
        budget = ProbeBudget(max_pairs=1, per_column=0)
        without = ProbePlanner(budget).plan(table)
        with_priors = ProbePlanner(budget).plan(
            table,
            type_probs=type_probs,
            subject_priors={city: 1.0, country: 0.0},
        )
        assert without.pairs == ((2, 3),)  # proximity wins model-free
        assert with_priors.pairs == ((1, 3),)  # the city subject wins

    def test_incompatible_predicted_types_pruned(self, dataset):
        compat = relation_type_compatibility(dataset)
        table = entity_table(3)
        # Column 0 looks like a city, 1 like a country, 2 like a year.
        type_probs = np.array(
            [[0.9, 0.1, 0.0], [0.1, 0.9, 0.0], [0.0, 0.1, 0.9]]
        )
        planner = ProbePlanner()
        pairs = planner.plan(
            table, type_probs=type_probs, type_compatibility=compat
        ).pairs
        assert (0, 1) in pairs
        assert (0, 2) not in pairs
        assert (1, 2) not in pairs


class TestPairDeduplication:
    """Satellite regression: no pair is ever encoded twice."""

    def test_default_pairs_collapse_reversed_gold(self):
        table = Table(
            columns=[entity_column(0), entity_column(1), entity_column(2)],
            relation_labels={(0, 1): ["a"], (1, 0): ["a"], (2, 1): ["b"]},
        )
        assert default_relation_pairs(table) == [(0, 1), (2, 1)]

    def test_default_pairs_keep_direction_of_first_occurrence(self):
        table = Table(
            columns=[entity_column(0), entity_column(1)],
            relation_labels={(1, 0): ["a"]},
        )
        assert default_relation_pairs(table) == [(1, 0)]

    def test_validate_drops_exact_repeats_keeps_reversed(self):
        table = entity_table(3)
        assert validate_relation_pairs(
            table, [(0, 1), (0, 1), (1, 0), (2, 0)]
        ) == [(0, 1), (1, 0), (2, 0)]

    def test_validate_still_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            validate_relation_pairs(entity_table(2), [(0, 5)])


@pytest.fixture(scope="module")
def trainer(shared_tiny_annotator):
    return shared_tiny_annotator.trainer


@pytest.fixture()
def unlabeled_table():
    return Table(
        columns=[entity_column(2 * c, num_rows=4) for c in range(5)],
        table_id="serve-me",
    )


class TestTrainerIntegration:
    def test_planned_equals_explicit_request_bytes(self, trainer, unlabeled_table):
        planner = ProbePlanner(ProbeBudget(max_pairs=3))
        pairs = planner.plan_pairs(unlabeled_table)
        planned = trainer.annotate_batch(
            [unlabeled_table], probe_planner=planner
        )[0]
        explicit = trainer.annotate_batch(
            [unlabeled_table], pair_requests=[pairs]
        )[0]
        assert planned.probed_pairs == explicit.probed_pairs == pairs
        assert np.array_equal(planned.type_probs, explicit.type_probs)
        for pair in pairs:
            assert np.array_equal(
                planned.relation_probs[pair], explicit.relation_probs[pair]
            )

    def test_explicit_pairs_bypass_planner(self, trainer, unlabeled_table):
        planner = ProbePlanner(ProbeBudget(max_pairs=1))
        raw = trainer.annotate_batch(
            [unlabeled_table],
            pair_requests=[[(0, 4), (2, 3)]],
            probe_planner=planner,
        )[0]
        assert raw.probed_pairs == [(0, 4), (2, 3)]
        assert planner.tables_planned == 0

    def test_reversed_gold_probed_once(self, trainer):
        table = Table(
            columns=[entity_column(0, num_rows=4), entity_column(3, num_rows=4)],
            table_id="revgold",
            relation_labels={(0, 1): ["a"], (1, 0): ["a"]},
        )
        raw = trainer.annotate_batch([table])[0]
        assert raw.probed_pairs == [(0, 1)]

    def test_predict_relations_under_planner_pins_gold(self, trainer):
        table = Table(
            columns=[entity_column(2 * c, num_rows=4) for c in range(4)],
            table_id="eval",
            relation_labels={(0, 1): ["a"], (0, 3): ["b"]},
        )
        planner = ProbePlanner(ProbeBudget(max_pairs=3))
        results = trainer.predict_relations([table], probe_planner=planner)[0]
        assert {(0, 1), (0, 3)} <= set(results)
        baseline = trainer.predict_relations([table])[0]
        for pair, decided in baseline.items():
            assert np.array_equal(results[pair], decided)

    def test_fingerprint_probe_marker(self, trainer):
        legacy = trainer.annotation_fingerprint()
        assert trainer.annotation_fingerprint(probe=None) == legacy
        tagged = trainer.annotation_fingerprint(probe="planned(max_pairs=4)")
        assert tagged != legacy
        # Memoized per (dtype, probe) key.
        assert trainer.annotation_fingerprint(probe="planned(max_pairs=4)") == tagged


class TestEngineIntegration:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(probe_mode="greedy")
        with pytest.raises(ValueError):
            EngineConfig(probe_budget=4)  # exhaustive mode has no budget
        with pytest.raises(ValueError):
            EngineConfig(probe_mode="planned", probe_budget=0)
        EngineConfig(probe_mode="planned")  # uncapped planning is fine

    def test_exhaustive_mode_is_byte_identical_to_default(
        self, trainer, unlabeled_table
    ):
        default = AnnotationEngine(trainer)
        exhaustive = AnnotationEngine(
            trainer, EngineConfig(probe_mode="exhaustive")
        )
        assert default.model_fingerprint == exhaustive.model_fingerprint
        assert default.model_fingerprint == trainer.annotation_fingerprint()
        a = default.annotate(unlabeled_table).annotated
        b = exhaustive.annotate(unlabeled_table).annotated
        assert a.type_scores == b.type_scores
        assert a.colrels == b.colrels
        assert a.requested_pairs == b.requested_pairs

    def test_planned_mode_equals_explicit_pairs(self, trainer, unlabeled_table):
        planned_engine = AnnotationEngine(
            trainer, EngineConfig(probe_mode="planned", probe_budget=3)
        )
        plain_engine = AnnotationEngine(trainer)
        plan = ProbePlanner(ProbeBudget(max_pairs=3)).plan(unlabeled_table)
        planned = planned_engine.annotate(unlabeled_table).annotated
        explicit = plain_engine.annotate(
            unlabeled_table, pairs=list(plan.pairs)
        ).annotated
        assert planned.requested_pairs == explicit.requested_pairs
        assert planned.colrels == explicit.colrels
        assert planned.type_scores == explicit.type_scores
        assert np.array_equal(planned.colemb, explicit.colemb)

    def test_planned_mode_rekeys_fingerprint(self, trainer):
        exhaustive = AnnotationEngine(trainer)
        narrow = AnnotationEngine(
            trainer, EngineConfig(probe_mode="planned", probe_budget=4)
        )
        wide = AnnotationEngine(
            trainer, EngineConfig(probe_mode="planned", probe_budget=8)
        )
        fingerprints = {
            exhaustive.model_fingerprint,
            narrow.model_fingerprint,
            wide.model_fingerprint,
        }
        assert len(fingerprints) == 3  # no cache/route ever mixes plans

    def test_probe_counters(self, trainer, unlabeled_table):
        engine = AnnotationEngine(
            trainer, EngineConfig(probe_mode="planned", probe_budget=3)
        )
        engine.annotate(unlabeled_table)
        assert engine.stats.pairs_planned == 3
        assert engine.stats.pairs_probed == 3
        assert engine.stats.pairs_pruned == 10 - 3
        assert engine.stats.probe_prune_rate == pytest.approx(0.7)

    def test_exhaustive_counts_probes_but_plans_nothing(
        self, trainer, unlabeled_table
    ):
        engine = AnnotationEngine(trainer)
        engine.annotate(unlabeled_table)
        assert engine.stats.pairs_probed == 4  # default (0, j) pairs
        assert engine.stats.pairs_planned == 0
        assert engine.stats.pairs_pruned == 0
        assert engine.stats.probe_prune_rate == 0.0

    def test_explicit_pairs_bypass_planner_in_planned_mode(
        self, trainer, unlabeled_table
    ):
        engine = AnnotationEngine(
            trainer, EngineConfig(probe_mode="planned", probe_budget=1)
        )
        result = engine.annotate(unlabeled_table, pairs=[(1, 2), (3, 4)])
        assert result.annotated.requested_pairs == [(1, 2), (3, 4)]
        assert engine.stats.pairs_planned == 0
        assert engine.stats.pairs_probed == 2

    def test_mixed_batch_planned_and_explicit(self, trainer, unlabeled_table):
        engine = AnnotationEngine(
            trainer, EngineConfig(probe_mode="planned", probe_budget=2)
        )
        requests = [
            AnnotationRequest(table=unlabeled_table),
            AnnotationRequest(table=unlabeled_table, pairs=((0, 1),)),
        ]
        results = engine.annotate_batch(requests)
        assert len(results[0].annotated.requested_pairs) == 2
        assert results[1].annotated.requested_pairs == [(0, 1)]


class TestStatsPlumbing:
    def test_gateway_reports_probe_prune_rate(self):
        from repro.serving.gateway import GatewayStats

        stats = GatewayStats()
        stats.engines["m"] = EngineStats(pairs_planned=1, pairs_pruned=3)
        payload = stats.to_dict()
        assert payload["engines"]["m"]["probe_prune_rate"] == 0.75
