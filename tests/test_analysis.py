"""Tests for the attention-dependency and LM-probing analyses."""

import numpy as np
import pytest

from repro.analysis import (
    AttentionDependency,
    ProbeScore,
    compute_attention_dependency,
    kb_relation_examples,
    kb_type_examples,
    probe_column_relations,
    probe_column_types,
    render_heatmap_ascii,
)
from repro.core import DoduoConfig, DoduoTrainer
from repro.datasets import KnowledgeBase, generate_viznet_dataset
from repro.nn import TransformerConfig
from repro.pretrain import MaskedLanguageModel, pretrain_mlm
from repro.text import train_wordpiece

from helpers import rng


@pytest.fixture(scope="module")
def viznet():
    return generate_viznet_dataset(num_tables=40, seed=11)


@pytest.fixture(scope="module")
def tokenizer(viznet):
    return train_wordpiece(viznet.all_cell_text() + ["is a directed born"], vocab_size=1200)


@pytest.fixture(scope="module")
def encoder_config(tokenizer):
    return TransformerConfig(
        vocab_size=tokenizer.vocab_size, hidden_dim=32, num_layers=2,
        num_heads=2, ffn_dim=64, max_position=128, num_segments=8, dropout=0.0,
    )


@pytest.fixture(scope="module")
def trainer(viznet, tokenizer, encoder_config):
    config = DoduoConfig(
        tasks=("type",), multi_label=False, epochs=2, batch_size=8,
        keep_best_checkpoint=False,
    )
    t = DoduoTrainer(viznet, tokenizer, encoder_config, config)
    t.train()
    return t


class TestAttentionDependency:
    def test_matrix_shape_and_types(self, trainer, viznet):
        dependency = compute_attention_dependency(trainer, viznet.tables)
        n = len(dependency.types)
        assert dependency.matrix.shape == (n, n)
        assert dependency.counts.shape == (n, n)

    def test_reference_point_zero(self, trainer, viznet):
        """Observed entries average ~0 after normalization."""
        dependency = compute_attention_dependency(trainer, viznet.tables)
        observed = dependency.matrix[dependency.counts > 0]
        assert abs(observed.mean()) < 1e-6

    def test_single_column_tables_excluded(self, trainer, viznet):
        singles = [t for t in viznet.tables if t.num_columns == 1]
        if singles:
            dependency = compute_attention_dependency(trainer, singles)
            assert dependency.counts.sum() == 0

    def test_dependency_lookup_and_top(self, trainer, viznet):
        dependency = compute_attention_dependency(trainer, viznet.tables)
        strongest = dependency.strongest_dependencies(top_k=5)
        assert len(strongest) <= 5
        if strongest:
            t_from, t_on, score = strongest[0]
            assert dependency.dependency(t_from, t_on) == pytest.approx(score)

    def test_ascii_rendering(self, trainer, viznet):
        dependency = compute_attention_dependency(trainer, viznet.tables[:10])
        text = render_heatmap_ascii(dependency)
        assert isinstance(text, str) and len(text.splitlines()) >= 1


class TestProbing:
    @pytest.fixture(scope="class")
    def probing_setup(self):
        kb = KnowledgeBase(rng(3), scale=0.3)
        corpus = kb.verbalize(rng(4))
        tokenizer = train_wordpiece(corpus, vocab_size=1200)
        config = TransformerConfig(
            vocab_size=tokenizer.vocab_size, hidden_dim=32, num_layers=2,
            num_heads=2, ffn_dim=64, max_position=64, dropout=0.0,
        )
        result = pretrain_mlm(corpus, tokenizer, config, epochs=3, batch_size=16,
                              lr=2e-3, seed=0)
        return kb, tokenizer, result.model

    def test_type_probing_report(self, probing_setup):
        kb, tokenizer, model = probing_setup
        examples = kb_type_examples(kb, rng(0), per_type=2)
        candidates = ["director", "city", "country", "film"]
        filtered = [(v, t) for v, t in examples if t in candidates]
        report = probe_column_types(model, tokenizer, filtered, candidates,
                                    max_examples_per_type=2)
        assert report.num_candidates == 4
        for score in report.scores:
            assert 1.0 <= score.average_rank <= 4.0
            assert score.normalized_ppl > 0

    def test_top_bottom_disjoint_ordering(self, probing_setup):
        kb, tokenizer, model = probing_setup
        examples = kb_type_examples(kb, rng(0), per_type=1)
        candidates = sorted({t for _, t in examples})[:6]
        filtered = [(v, t) for v, t in examples if t in candidates]
        report = probe_column_types(model, tokenizer, filtered, candidates,
                                    max_examples_per_type=1)
        top = report.top(2)
        bottom = report.bottom(2)
        assert top[0].average_rank <= bottom[-1].average_rank

    def test_relation_probing(self, probing_setup):
        kb, tokenizer, model = probing_setup
        examples = kb_relation_examples(kb, rng(0), per_relation=1)
        candidates = ["film.directed_by", "person.place_of_birth", "city.located_in"]
        filtered = [e for e in examples if e[2] in candidates]
        report = probe_column_relations(model, tokenizer, filtered, candidates,
                                        max_examples_per_relation=1)
        assert report.scores
        for score in report.scores:
            assert 1.0 <= score.average_rank <= len(candidates)

    def test_unknown_relations_skipped(self, probing_setup):
        kb, tokenizer, model = probing_setup
        report = probe_column_relations(
            model, tokenizer, [("a", "b", "no.such_relation")], ["no.such_relation"]
        )
        assert report.scores == []

    def test_kb_example_helpers(self, probing_setup):
        kb, _, _ = probing_setup
        type_examples = kb_type_examples(kb, rng(1), per_type=3)
        assert all(t in kb.entities for _, t in type_examples)
        relation_examples = kb_relation_examples(kb, rng(1), per_relation=3)
        assert all(len(e) == 3 for e in relation_examples)
