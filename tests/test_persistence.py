"""Tests for model bundles (repro.core.persistence) and tokenizer save/load."""

import json

import numpy as np
import pytest

from repro.core import load_annotator, save_annotator
from repro.datasets import generate_wikitable_dataset
from repro.text import WordPieceTokenizer, train_wordpiece


class TestTokenizerPersistence:
    def test_roundtrip_ids_stable(self, tmp_path):
        tokenizer = train_wordpiece(["happy feet", "george miller 1998"],
                                    vocab_size=300)
        path = tmp_path / "tok.json"
        tokenizer.save(path)
        back = WordPieceTokenizer.load(path)
        assert back.vocab_size == tokenizer.vocab_size
        for text in ("happy feet", "george miller", "unseen zebra 42"):
            assert back.encode(text) == tokenizer.encode(text)

    def test_special_token_ids_preserved(self, tmp_path):
        tokenizer = train_wordpiece(["some text"], vocab_size=100)
        path = tmp_path / "tok.json"
        tokenizer.save(path)
        back = WordPieceTokenizer.load(path)
        assert back.vocab.pad_id == tokenizer.vocab.pad_id
        assert back.vocab.cls_id == tokenizer.vocab.cls_id
        assert back.vocab.sep_id == tokenizer.vocab.sep_id
        assert back.vocab.mask_id == tokenizer.vocab.mask_id

    def test_max_word_chars_preserved(self, tmp_path):
        tokenizer = train_wordpiece(["abc"], vocab_size=50)
        tokenizer.max_word_chars = 7
        path = tmp_path / "tok.json"
        tokenizer.save(path)
        assert WordPieceTokenizer.load(path).max_word_chars == 7

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "bpe-v2", "tokens": []}))
        with pytest.raises(ValueError, match="wordpiece-v1"):
            WordPieceTokenizer.load(path)


class TestAnnotatorBundle:
    @pytest.fixture(scope="class")
    def annotator(self, shared_tiny_annotator):
        return shared_tiny_annotator

    @pytest.fixture(scope="class")
    def sample_tables(self):
        return generate_wikitable_dataset(num_tables=6, seed=91, max_rows=4).tables

    def test_roundtrip_reproduces_predictions(self, annotator, sample_tables,
                                              tmp_path_factory):
        bundle_dir = tmp_path_factory.mktemp("bundle")
        save_annotator(annotator, bundle_dir)
        restored = load_annotator(bundle_dir)
        for table in sample_tables:
            original = annotator.annotate(table)
            loaded = restored.annotate(table)
            assert loaded.coltypes == original.coltypes
            assert loaded.colrels == original.colrels
            np.testing.assert_allclose(loaded.colemb, original.colemb,
                                       rtol=1e-5, atol=1e-6)

    def test_bundle_files_exist(self, annotator, tmp_path):
        save_annotator(annotator, tmp_path / "m")
        assert (tmp_path / "m" / "bundle.json").exists()
        assert (tmp_path / "m" / "tokenizer.json").exists()
        assert (tmp_path / "m" / "weights.npz").exists()

    def test_manifest_contents(self, annotator, tmp_path):
        save_annotator(annotator, tmp_path / "m")
        manifest = json.loads((tmp_path / "m" / "bundle.json").read_text())
        assert manifest["kind"] == "doduo-bundle"
        assert manifest["type_vocab"] == annotator.trainer.dataset.type_vocab
        assert list(manifest["doduo_config"]["tasks"]) == list(
            annotator.trainer.config.tasks
        )

    def test_missing_bundle_raises(self, tmp_path):
        with pytest.raises(ValueError, match="bundle.json"):
            load_annotator(tmp_path)

    def test_wrong_kind_raises(self, tmp_path):
        (tmp_path / "bundle.json").write_text(json.dumps({"kind": "other"}))
        with pytest.raises(ValueError, match="not a doduo bundle"):
            load_annotator(tmp_path)

    def test_wrong_version_raises(self, tmp_path):
        (tmp_path / "bundle.json").write_text(
            json.dumps({"kind": "doduo-bundle", "version": 99})
        )
        with pytest.raises(ValueError, match="version"):
            load_annotator(tmp_path)

    def test_save_is_idempotent(self, annotator, tmp_path):
        save_annotator(annotator, tmp_path / "m")
        save_annotator(annotator, tmp_path / "m")  # overwrite in place
        restored = load_annotator(tmp_path / "m")
        assert restored.trainer.dataset.num_types == (
            annotator.trainer.dataset.num_types
        )
