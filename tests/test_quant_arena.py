"""Int8 quantization and the shared weight arena (PR 10).

Two serving-side weight representations, two contracts:

* the **float32 arena** is byte-neutral: an arena-backed model serves
  exactly the bytes of the npz-loaded one, the ``precision="float32"``
  engine serves exactly the default engine's bytes, and neither changes
  the annotation fingerprint;
* the **int8 path** is deliberately lossy and must be loudly partitioned:
  a distinct fingerprint (never sharing a cache partition with float),
  an accuracy gate that calibrates drift into the proof cache, and a
  counted float32 fallback when the gate disproves quantization.

Plus the machinery both lean on: arena file round-trip/corruption
handling, deferred parameter init for full-overwrite load paths, pool
stats merging of the new counters, and the bounded column-profile memo.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Doduo, DoduoConfig, DoduoTrainer, load_annotator, save_annotator
from repro.core.persistence import ensure_model_arena
from repro.core.wide import profile_cache_stats
from repro.datasets import generate_wikitable_dataset
from repro.encoding.cache import LRUCache
from repro.nn import TransformerConfig, deferred_init
from repro.nn import layers as nn_layers
from repro.nn import quant
from repro.nn.arena import (
    Arena,
    attach_arena,
    model_arena,
    model_arena_tensors,
    write_arena,
    write_model_arena,
)
from repro.serving.engine import AnnotationEngine, EngineConfig
from repro.serving.pool import _fix_ratios, merge_counters
from repro.text import train_wordpiece


@pytest.fixture(scope="module")
def trainer():
    dataset = generate_wikitable_dataset(num_tables=20, seed=11, max_rows=4)
    tokenizer = train_wordpiece(dataset.all_cell_text(), vocab_size=600)
    encoder = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        hidden_dim=32,
        num_layers=2,
        num_heads=2,
        ffn_dim=64,
        max_position=160,
        num_segments=8,
        dropout=0.0,
    )
    config = DoduoConfig(epochs=1, batch_size=8, keep_best_checkpoint=False)
    t = DoduoTrainer(dataset, tokenizer, encoder, config)
    t.train()
    return t


@pytest.fixture(scope="module")
def bundle(trainer, tmp_path_factory):
    return save_annotator(Doduo(trainer), tmp_path_factory.mktemp("bundle"))


def _annotation_bytes(trainer, tables, **kwargs):
    raw = trainer.annotate_batch(tables, with_embeddings=True, **kwargs)
    return [(r.type_probs, dict(r.relation_probs), r.embeddings) for r in raw]


def _assert_bitwise(a, b):
    for (at, ar, ae), (bt, br, be) in zip(a, b):
        assert (at == bt).all()
        assert ar.keys() == br.keys()
        for pair in ar:
            assert (ar[pair] == br[pair]).all()
        assert (ae == be).all()


# ---------------------------------------------------------------------------
# Quantization recipe
# ---------------------------------------------------------------------------


class TestQuantizeWeight:
    def test_round_trip_bounds(self):
        rng = np.random.default_rng(0)
        w = (rng.standard_normal((16, 8)) * 3.0).astype(np.float32)
        qw = quant.quantize_weight(w)
        assert qw.q.dtype == np.int8
        assert qw.scale.dtype == np.float32
        assert qw.scale.shape == (8,)
        assert np.abs(qw.q.astype(np.int32)).max() <= 127
        # Rounding error is at most half a quantization step per channel.
        err = np.abs(w - quant.quantize_dequantize(w))
        assert (err <= qw.scale / 2 + 1e-7).all()

    def test_zero_channel_is_exact(self):
        w = np.zeros((4, 3), dtype=np.float32)
        w[:, 0] = [1.0, -2.0, 0.5, 0.0]
        qw = quant.quantize_weight(w)
        assert qw.scale[1] == 1.0 and qw.scale[2] == 1.0
        assert (quant.dequantize_weight(qw)[:, 1:] == 0.0).all()

    def test_commutes_with_column_concat(self):
        """Per-channel quantization of Q|K|V packed == packing the per-matrix
        quantizations — the property the fused QKV projection relies on."""
        rng = np.random.default_rng(1)
        parts = [
            (rng.standard_normal((8, 6)) * (i + 1)).astype(np.float32)
            for i in range(3)
        ]
        packed = quant.quantize_weight(np.concatenate(parts, axis=1))
        separate = [quant.quantize_weight(p) for p in parts]
        assert (packed.q == np.concatenate([s.q for s in separate], axis=1)).all()
        assert (packed.scale == np.concatenate([s.scale for s in separate])).all()

    def test_named_linear_weights_matches_state_dict(self, trainer):
        model = trainer.model
        state = model.state_dict()
        names = quant.quantizable_weight_names(model)
        assert names  # every Linear in the model qualifies
        for name in names:
            assert name in state
            assert state[name].ndim == 2


# ---------------------------------------------------------------------------
# Arena file format
# ---------------------------------------------------------------------------


class TestArenaFile:
    def _tensors(self):
        rng = np.random.default_rng(2)
        return {
            "a": rng.standard_normal((5, 3)).astype(np.float32),
            "b::q": rng.integers(-127, 128, size=(4, 4), dtype=np.int8),
            "c": rng.standard_normal(7).astype(np.float64),
        }

    def test_round_trip_and_verify(self, tmp_path):
        tensors = self._tensors()
        path = write_arena(tmp_path / "t.rpwa", tensors, meta={"precision": "float32"})
        arena = Arena(path)
        assert arena.names() == list(tensors)
        assert arena.precision == "float32"
        for name, array in tensors.items():
            view = arena[name]
            assert view.dtype == array.dtype
            assert (view == array).all()
            assert not view.flags.writeable
        assert arena.verify()

    def test_rejects_corruption(self, tmp_path):
        path = write_arena(tmp_path / "t.rpwa", self._tensors())
        raw = bytearray(path.read_bytes())

        bad_magic = tmp_path / "magic.rpwa"
        bad_magic.write_bytes(b"NOPE" + bytes(raw[4:]))
        with pytest.raises(ValueError, match="bad magic"):
            Arena(bad_magic)

        bad_version = tmp_path / "version.rpwa"
        bad_version.write_bytes(bytes(raw[:4]) + b"\xff" + bytes(raw[5:]))
        with pytest.raises(ValueError, match="version"):
            Arena(bad_version)

        truncated = tmp_path / "trunc.rpwa"
        truncated.write_bytes(bytes(raw[:10]))
        with pytest.raises(ValueError, match="too short"):
            Arena(truncated)

    def test_flipped_payload_fails_verify(self, tmp_path):
        path = write_arena(tmp_path / "t.rpwa", self._tensors())
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # last tensor byte
        path.write_bytes(bytes(raw))
        assert not Arena(path).verify()


# ---------------------------------------------------------------------------
# Model arenas: float32 byte-neutral, int8 partitioned
# ---------------------------------------------------------------------------


class TestModelArena:
    def test_float32_arena_stores_exact_bytes(self, trainer, tmp_path):
        model = trainer.model
        path = write_model_arena(model, tmp_path / "m.rpwa")
        arena = Arena(path)
        assert arena.meta["source_fingerprint"] == model.fingerprint()
        for name, param in model.named_parameters():
            assert (arena[name] == param.data).all()

    def test_int8_arena_stores_quantized_and_compute(self, trainer):
        model = trainer.model
        tensors = model_arena_tensors(model, precision="int8")
        quantized = quant.quantizable_weight_names(model)
        state = model.state_dict()
        for name in quantized:
            qw = quant.quantize_weight(state[name])
            assert (tensors[f"{name}::q"] == qw.q).all()
            assert (tensors[f"{name}::scale"] == qw.scale).all()
            # The compute array is the dequantized round-trip, not the
            # original floats.
            assert (tensors[name] == quant.dequantize_weight(qw)).all()
        for name, param in model.named_parameters():
            if name not in quantized:
                assert (tensors[name] == param.data).all()

    def test_attach_rejects_incomplete_arena(self, trainer, tmp_path):
        model = trainer.model
        tensors = model_arena_tensors(model)
        dropped = next(iter(tensors))
        partial = {k: v for k, v in tensors.items() if k != dropped}
        path = write_arena(tmp_path / "partial.rpwa", partial)
        with pytest.raises(KeyError, match="missing tensor"):
            attach_arena(model, Arena(path))


class TestBundleArena:
    def test_arena_backed_load_is_bitwise(self, trainer, bundle):
        tables = trainer.dataset.tables[:4]
        plain = load_annotator(bundle)
        arena_path = ensure_model_arena(bundle)
        backed = load_annotator(bundle, weight_arena=arena_path)
        assert model_arena(backed.trainer.model) is not None
        assert model_arena(plain.trainer.model) is None
        # npz load == original == arena-backed, down to the last bit.
        reference = _annotation_bytes(trainer, tables, kernels="fast")
        _assert_bitwise(_annotation_bytes(plain.trainer, tables, kernels="fast"), reference)
        _assert_bitwise(_annotation_bytes(backed.trainer, tables, kernels="fast"), reference)
        # Same weights → same fingerprint → same cache partition.
        assert backed.trainer.annotation_fingerprint() == trainer.annotation_fingerprint()

    def test_ensure_model_arena_reuses_until_weights_change(self, bundle):
        path = ensure_model_arena(bundle)
        stamp = path.stat().st_mtime_ns
        assert ensure_model_arena(bundle) == path
        assert path.stat().st_mtime_ns == stamp  # reused, not rebuilt
        # Re-saving the bundle invalidates the arena's source signature.
        weights = bundle / "weights.npz"
        weights.write_bytes(weights.read_bytes())
        rebuilt = ensure_model_arena(bundle)
        assert rebuilt == path
        assert path.stat().st_mtime_ns != stamp

    def test_arena_views_are_read_only(self, trainer, bundle):
        backed = load_annotator(bundle, weight_arena=ensure_model_arena(bundle))
        param = next(iter(backed.trainer.model.parameters()))
        with pytest.raises((ValueError, RuntimeError)):
            param.data[...] = 0.0


# ---------------------------------------------------------------------------
# Deferred init
# ---------------------------------------------------------------------------


class TestDeferredInit:
    def test_deferred_layers_are_zero(self):
        rng = np.random.default_rng(3)
        with deferred_init():
            linear = nn_layers.Linear(4, 3, rng)
            embedding = nn_layers.Embedding(6, 5, rng)
        assert linear.weight.data.dtype == np.float32
        assert linear.weight.data.shape == (4, 3)
        assert (linear.weight.data == 0.0).all()
        assert (embedding.weight.data == 0.0).all()
        # Outside the context, random init is back.
        assert nn_layers.Linear(4, 3, rng).weight.data.any()

    def test_flag_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with deferred_init():
                assert nn_layers._DEFER_INIT
                raise RuntimeError("boom")
        assert not nn_layers._DEFER_INIT

    def test_nested_contexts(self):
        with deferred_init():
            with deferred_init():
                assert nn_layers._DEFER_INIT
            assert nn_layers._DEFER_INIT
        assert not nn_layers._DEFER_INIT


# ---------------------------------------------------------------------------
# Fingerprint partitioning and the precision knob
# ---------------------------------------------------------------------------


class TestPrecisionFingerprint:
    def test_float_defaults_share_a_digest(self, trainer):
        base = trainer.annotation_fingerprint()
        assert trainer.annotation_fingerprint(precision=None) == base
        assert trainer.annotation_fingerprint(precision="float32") == base

    def test_int8_never_shares_a_partition(self, trainer):
        base = trainer.annotation_fingerprint()
        int8 = trainer.annotation_fingerprint(precision="int8")
        assert int8 != base
        assert int8 != trainer.annotation_fingerprint(dtype="float64")

    def test_engine_folds_precision(self, trainer):
        default = AnnotationEngine(trainer).model_fingerprint
        f32 = AnnotationEngine(
            trainer, EngineConfig(precision="float32")
        ).model_fingerprint
        int8 = AnnotationEngine(
            trainer, EngineConfig(precision="int8")
        ).model_fingerprint
        assert f32 == default
        assert int8 != default

    def test_precision_validation(self):
        with pytest.raises(ValueError, match="precision"):
            EngineConfig(precision="int4")
        with pytest.raises(ValueError, match="kernels"):
            EngineConfig(precision="int8", kernels="reference")


# ---------------------------------------------------------------------------
# The accuracy gate
# ---------------------------------------------------------------------------


class TestAccuracyGate:
    def test_calibration_passes_and_records_drift(self, trainer):
        trainer.model.invalidate_sessions()
        engine = AnnotationEngine(trainer, EngineConfig(precision="int8"))
        tables = trainer.dataset.tables[:4]
        results = engine.annotate_batch(tables)
        assert len(results) == len(tables)
        assert engine.stats.quant_fallbacks == 0
        proofs = trainer.model.inference_session("int8").workspace.proofs
        assert proofs.verdict(quant.GATE_KEY) is True
        drift_keys = [
            key for key in proofs.drifts if key[0] == quant.DRIFT_KEY_PREFIX
        ]
        assert drift_keys
        tolerance = max(
            quant.HIDDEN_DRIFT_TOLERANCE, quant.LOGIT_DRIFT_TOLERANCE
        )
        for key in drift_keys:
            assert proofs.drifts[key] <= tolerance

    def test_disproven_gate_falls_back_to_float_bytes(self, trainer):
        tables = trainer.dataset.tables[:3]
        reference = [
            r.annotated for r in AnnotationEngine(trainer).annotate_batch(tables)
        ]
        # Hydrate a disproof before first use, exactly as a persisted
        # verdict would arrive: the session must skip calibration and
        # permanently delegate to the float32 path, counting each call.
        trainer.model.invalidate_sessions()
        session = trainer.model.inference_session("int8")
        session.workspace.proofs.record(quant.GATE_KEY, False)
        before = trainer.model.quant_fallbacks
        engine = AnnotationEngine(trainer, EngineConfig(precision="int8"))
        results = engine.annotate_batch(tables)
        assert trainer.model.quant_fallbacks > before
        assert engine.stats.quant_fallbacks == trainer.model.quant_fallbacks - before
        for got, want in zip(results, reference):
            for g, w in zip(got.annotated.type_scores, want.type_scores):
                assert g == w  # fallback serves the float32 bytes
        trainer.model.invalidate_sessions()  # drop the poisoned session

    def test_explicit_float32_precision_is_byte_identical(self, trainer):
        tables = trainer.dataset.tables[:4]
        default = AnnotationEngine(trainer).annotate_batch(tables)
        explicit = AnnotationEngine(
            trainer, EngineConfig(precision="float32")
        ).annotate_batch(tables)
        for d, e in zip(default, explicit):
            assert d.annotated.type_scores == e.annotated.type_scores
            assert d.annotated.colrels == e.annotated.colrels


# ---------------------------------------------------------------------------
# Pool stats plumbing for the new counters
# ---------------------------------------------------------------------------


class TestMergedCounters:
    def test_quant_and_arena_counters_sum(self):
        worker = lambda fallbacks, remaps, padded, real: {
            "engine": {
                "quant_fallbacks": fallbacks,
                "padded_tokens": padded,
                "real_tokens": real,
                "padding_waste": (padded - real) / padded,
                "planner_mode": "exact",
            },
            "registry": {"arena_remaps": remaps},
        }
        merged = {}
        merge_counters(merged, worker(2, 1, 100, 80))
        merge_counters(merged, worker(3, 1, 300, 120))
        _fix_ratios(merged)
        assert merged["engine"]["quant_fallbacks"] == 5
        assert merged["registry"]["arena_remaps"] == 2
        # Ratios recompute from merged raw counters, not sum of ratios.
        assert merged["engine"]["padding_waste"] == pytest.approx(200 / 400)
        assert merged["engine"]["planner_mode"] == "exact"


# ---------------------------------------------------------------------------
# Bounded column-profile memo (satellite regression)
# ---------------------------------------------------------------------------


class TestProfileCacheBound:
    def test_lru_eviction_counter(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert cache.evictions == 1
        assert cache.get("a") is None
        assert cache.get("c") == 3

    def test_profile_cache_stats_shape(self):
        stats = profile_cache_stats()
        assert set(stats) == {"size", "capacity", "hits", "misses", "evictions"}
        assert stats["capacity"] == 4096
