"""Tests for optimizers, the LR schedule, and checkpoint serialization."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    AdamW,
    CosineDecayScheduler,
    Linear,
    LinearDecayScheduler,
    SGD,
    Tensor,
    WarmupLinearScheduler,
    load_checkpoint,
    save_checkpoint,
)
from repro.nn.serialization import copy_parameters

from helpers import rng


def quadratic_loss(param: Tensor) -> Tensor:
    target = Tensor(np.array([3.0, -2.0], dtype=np.float32))
    diff = param - target
    return (diff * diff).sum()


class TestSGD:
    def test_minimizes_quadratic(self):
        param = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        optimizer = SGD([param], lr=0.1)
        for _ in range(100):
            loss = quadratic_loss(param)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, [3.0, -2.0], atol=1e-3)

    def test_momentum_accelerates(self):
        param_a = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        param_b = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        plain = SGD([param_a], lr=0.01)
        momentum = SGD([param_b], lr=0.01, momentum=0.9)
        for _ in range(20):
            for param, opt in ((param_a, plain), (param_b, momentum)):
                loss = quadratic_loss(param)
                opt.zero_grad()
                loss.backward()
                opt.step()
        assert quadratic_loss(param_b).item() < quadratic_loss(param_a).item()

    def test_requires_trainable_params(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0])], lr=0.1)


class TestAdam:
    def test_minimizes_quadratic(self):
        param = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        optimizer = Adam([param], lr=0.1)
        for _ in range(200):
            loss = quadratic_loss(param)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, [3.0, -2.0], atol=1e-2)

    def test_skips_params_without_grad(self):
        a = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        optimizer = Adam([a, b], lr=0.1)
        loss = quadratic_loss(a)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        np.testing.assert_allclose(b.data, 1.0)  # untouched

    def test_gradient_clipping(self):
        param = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        optimizer = Adam([param], lr=1.0, max_grad_norm=1.0)
        param.grad = np.array([30.0, 40.0], dtype=np.float32)
        optimizer._clip_gradients()
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, rel=1e-5)

    def test_weight_decay_shrinks(self):
        param = Tensor(np.full(2, 10.0, dtype=np.float32), requires_grad=True)
        optimizer = Adam([param], lr=0.1, weight_decay=0.1, max_grad_norm=None)
        for _ in range(50):
            optimizer.zero_grad()
            param.grad = np.zeros(2, dtype=np.float32)
            optimizer.step()
        assert np.abs(param.data).max() < 10.0


class TestAdamW:
    def test_minimizes_quadratic(self):
        param = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        optimizer = AdamW([param], lr=0.1, weight_decay=0.0)
        for _ in range(200):
            loss = quadratic_loss(param)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, [3.0, -2.0], atol=1e-2)

    def test_decoupled_decay_shrinks_weights(self):
        param = Tensor(np.full(2, 10.0, dtype=np.float32), requires_grad=True)
        optimizer = AdamW([param], lr=0.1, weight_decay=0.5, max_grad_norm=None)
        param.grad = np.zeros(2, dtype=np.float32)
        optimizer.step()
        # One step shrinks by exactly lr * weight_decay (zero gradient means
        # the Adam update itself is zero).
        np.testing.assert_allclose(param.data, 10.0 * (1 - 0.1 * 0.5), rtol=1e-5)

    def test_decay_pulls_toward_smaller_optimum_than_adam_l2_free(self):
        target_free = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        target_decayed = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        free = Adam([target_free], lr=0.05)
        decayed = AdamW([target_decayed], lr=0.05, weight_decay=0.2)
        for _ in range(300):
            for param, opt in ((target_free, free), (target_decayed, decayed)):
                loss = quadratic_loss(param)
                opt.zero_grad()
                loss.backward()
                opt.step()
        assert np.abs(target_decayed.data).sum() < np.abs(target_free.data).sum()


class TestWarmupLinearScheduler:
    def _opt(self, lr=1.0):
        param = Tensor(np.zeros(1, dtype=np.float32), requires_grad=True)
        return Adam([param], lr=lr)

    def test_starts_at_zero(self):
        optimizer = self._opt()
        WarmupLinearScheduler(optimizer, total_steps=10, warmup_steps=4)
        assert optimizer.lr == 0.0

    def test_peak_at_end_of_warmup(self):
        optimizer = self._opt()
        scheduler = WarmupLinearScheduler(optimizer, total_steps=10, warmup_steps=4)
        for _ in range(4):
            scheduler.step()
        assert optimizer.lr == pytest.approx(1.0)

    def test_decays_to_zero(self):
        optimizer = self._opt()
        scheduler = WarmupLinearScheduler(optimizer, total_steps=10, warmup_steps=4)
        for _ in range(10):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.0, abs=1e-9)

    def test_zero_warmup_behaves_like_linear_decay(self):
        opt_a, opt_b = self._opt(), self._opt()
        warmup = WarmupLinearScheduler(opt_a, total_steps=8, warmup_steps=0)
        linear = LinearDecayScheduler(opt_b, total_steps=8)
        for _ in range(5):
            warmup.step()
            linear.step()
        assert opt_a.lr == pytest.approx(opt_b.lr)

    def test_invalid_warmup_raises(self):
        with pytest.raises(ValueError, match="warmup_steps"):
            WarmupLinearScheduler(self._opt(), total_steps=5, warmup_steps=5)


class TestCosineDecayScheduler:
    def _opt(self, lr=1.0):
        param = Tensor(np.zeros(1, dtype=np.float32), requires_grad=True)
        return Adam([param], lr=lr)

    def test_monotone_decreasing(self):
        optimizer = self._opt()
        scheduler = CosineDecayScheduler(optimizer, total_steps=20)
        values = []
        for _ in range(20):
            scheduler.step()
            values.append(optimizer.lr)
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))

    def test_reaches_min_lr(self):
        optimizer = self._opt()
        scheduler = CosineDecayScheduler(optimizer, total_steps=10, min_lr=0.1)
        for _ in range(15):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.1)

    def test_halfway_is_mean_of_base_and_min(self):
        optimizer = self._opt()
        scheduler = CosineDecayScheduler(optimizer, total_steps=10, min_lr=0.0)
        for _ in range(5):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.5)

    def test_negative_min_lr_raises(self):
        with pytest.raises(ValueError, match="min_lr"):
            CosineDecayScheduler(self._opt(), total_steps=5, min_lr=-1.0)


class TestScheduler:
    def test_linear_decay_to_zero(self):
        param = Tensor(np.zeros(1, dtype=np.float32), requires_grad=True)
        optimizer = Adam([param], lr=1.0)
        scheduler = LinearDecayScheduler(optimizer, total_steps=10)
        for step in range(10):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.0, abs=1e-9)

    def test_halfway(self):
        param = Tensor(np.zeros(1, dtype=np.float32), requires_grad=True)
        optimizer = Adam([param], lr=1.0)
        scheduler = LinearDecayScheduler(optimizer, total_steps=4)
        scheduler.step()
        scheduler.step()
        assert scheduler.current_lr == pytest.approx(0.5)

    def test_invalid_total_steps(self):
        param = Tensor(np.zeros(1, dtype=np.float32), requires_grad=True)
        with pytest.raises(ValueError):
            LinearDecayScheduler(Adam([param]), total_steps=0)


class TestCheckpoints:
    def test_save_load_roundtrip(self, tmp_path):
        a = Linear(3, 4, rng(0))
        b = Linear(3, 4, rng(1))
        path = tmp_path / "ckpt.npz"
        save_checkpoint(a, path)
        load_checkpoint(b, path)
        np.testing.assert_allclose(a.weight.data, b.weight.data)
        np.testing.assert_allclose(a.bias.data, b.bias.data)

    def test_copy_parameters(self):
        a = Linear(3, 4, rng(0))
        b = Linear(3, 4, rng(1))
        copy_parameters(a, b)
        np.testing.assert_allclose(a.weight.data, b.weight.data)
        # copies are independent
        b.weight.data[0, 0] += 1.0
        assert a.weight.data[0, 0] != b.weight.data[0, 0]
