"""Tests for numeric magnitude features (repro.core.numeric) and the
use_numeric_embeddings model extension (Section 3.1 future work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DoduoConfig, DoduoModel, DoduoTrainer, SerializerConfig, TableSerializer
from repro.core.numeric import (
    DATE_BIN,
    NON_NUMERIC_BIN,
    NUM_MAGNITUDE_BINS,
    OTHER_NUMERIC_BIN,
    ZERO_BIN,
    column_magnitude_bins,
    magnitude_bin,
)
from repro.datasets import Column, Table, generate_viznet_dataset
from repro.nn import TransformerConfig
from repro.text import train_wordpiece

from helpers import rng


class TestMagnitudeBin:
    def test_non_numeric(self):
        assert magnitude_bin("george miller") == NON_NUMERIC_BIN
        assert magnitude_bin("") == NON_NUMERIC_BIN
        assert magnitude_bin("120 kg") == NON_NUMERIC_BIN  # mixed text

    def test_zero(self):
        assert magnitude_bin("0") == ZERO_BIN
        assert magnitude_bin("0.0") == ZERO_BIN

    def test_magnitude_ordering(self):
        """Bins grow monotonically with magnitude."""
        values = ["0.001", "0.5", "7", "42", "900", "15000", "2500000"]
        bins = [magnitude_bin(v) for v in values]
        assert bins == sorted(bins)
        assert len(set(bins)) == len(bins)

    def test_sign_ignored(self):
        assert magnitude_bin("-42") == magnitude_bin("42")

    def test_thousands_separator(self):
        assert magnitude_bin("1,250,000") == magnitude_bin("1250000")

    def test_currency_stripped(self):
        assert magnitude_bin("$99") == magnitude_bin("99")

    def test_extreme_magnitudes_clipped(self):
        assert magnitude_bin("1e99") == magnitude_bin("99999999999")
        assert magnitude_bin("1e-99") == magnitude_bin("0.0001")

    def test_dates(self):
        assert magnitude_bin("3/14/1995") == DATE_BIN
        assert magnitude_bin("1995-03-14") == DATE_BIN

    def test_nan_and_inf(self):
        assert magnitude_bin("nan") == OTHER_NUMERIC_BIN
        assert magnitude_bin("inf") == OTHER_NUMERIC_BIN

    def test_all_bins_in_range(self):
        for value in ("x", "0", "5", "1e20", "nan", "1/2/2000", "-0.003"):
            assert 0 <= magnitude_bin(value) < NUM_MAGNITUDE_BINS

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    @settings(max_examples=100, deadline=None)
    def test_any_float_string_is_numeric(self, value):
        bin_id = magnitude_bin(str(value))
        assert bin_id != NON_NUMERIC_BIN
        assert 0 < bin_id < NUM_MAGNITUDE_BINS

    def test_column_bins(self):
        assert column_magnitude_bins(["7", "x"]) == [magnitude_bin("7"),
                                                     NON_NUMERIC_BIN]


@pytest.fixture(scope="module")
def substrate():
    dataset = generate_viznet_dataset(num_tables=30, seed=3)
    tokenizer = train_wordpiece(dataset.all_cell_text(), vocab_size=900)
    return dataset, tokenizer


def encoder_config(vocab_size):
    return TransformerConfig(
        vocab_size=vocab_size, hidden_dim=32, num_layers=2, num_heads=2,
        ffn_dim=64, max_position=128, num_segments=8, dropout=0.0,
    )


class TestSerializerNumericIds:
    def test_numeric_ids_align_with_tokens(self, substrate):
        dataset, tokenizer = substrate
        serializer = TableSerializer(tokenizer, SerializerConfig())
        for table in dataset.tables[:10]:
            encoded = serializer.serialize_table(table)
            assert encoded.numeric_ids is not None
            assert len(encoded.numeric_ids) == len(encoded.token_ids)
            # Specials carry the non-numeric bin.
            for pos in encoded.cls_positions:
                assert encoded.numeric_ids[pos] == NON_NUMERIC_BIN
            assert encoded.numeric_ids[-1] == NON_NUMERIC_BIN

    def test_numeric_cells_marked(self, substrate):
        _, tokenizer = substrate
        serializer = TableSerializer(tokenizer, SerializerConfig())
        table = Table(columns=[Column(values=["12345", "67890"])])
        encoded = serializer.serialize_column(table, 0)
        inner = encoded.numeric_ids[1:-1]
        assert (inner != NON_NUMERIC_BIN).all()

    def test_text_cells_unmarked(self, substrate):
        _, tokenizer = substrate
        serializer = TableSerializer(tokenizer, SerializerConfig())
        table = Table(columns=[Column(values=["hello world"])])
        encoded = serializer.serialize_column(table, 0)
        assert (encoded.numeric_ids == NON_NUMERIC_BIN).all()

    def test_column_pair_ids(self, substrate):
        _, tokenizer = substrate
        serializer = TableSerializer(tokenizer, SerializerConfig())
        table = Table(columns=[
            Column(values=["42"]), Column(values=["text"]),
        ])
        encoded = serializer.serialize_column_pair(table, 0, 1)
        assert len(encoded.numeric_ids) == len(encoded.token_ids)
        assert (encoded.numeric_ids != NON_NUMERIC_BIN).any()


class TestNumericEmbeddingModel:
    def test_flag_adds_parameters(self, substrate):
        _, tokenizer = substrate
        config = encoder_config(tokenizer.vocab_size)
        plain = DoduoModel(config, 5, 0, rng(0))
        numeric = DoduoModel(config, 5, 0, rng(0), use_numeric_embeddings=True)
        assert numeric.num_parameters() > plain.num_parameters()
        names = dict(numeric.named_parameters())
        assert any("numeric_embedding" in n for n in names)

    def test_flag_changes_output_on_numeric_table(self, substrate):
        _, tokenizer = substrate
        config = encoder_config(tokenizer.vocab_size)
        plain = DoduoModel(config, 5, 0, rng(0))
        numeric = DoduoModel(config, 5, 0, rng(1), use_numeric_embeddings=True)
        # Align all shared weights; only the numeric table differs.
        shared = plain.state_dict()
        state = numeric.state_dict()
        state.update(shared)
        numeric.load_state_dict(state)
        plain.eval(); numeric.eval()
        serializer = TableSerializer(tokenizer, SerializerConfig())
        table = Table(columns=[Column(values=["1234", "5678"])])
        encoded = [serializer.serialize_table(table)]
        a = plain.column_embeddings(encoded).data
        b = numeric.column_embeddings(encoded).data
        assert not np.allclose(a, b)

    def test_trainer_with_numeric_embeddings_learns(self, substrate):
        dataset, tokenizer = substrate
        config = DoduoConfig(
            tasks=("type",), multi_label=False, epochs=4, batch_size=8,
            learning_rate=2e-3, use_numeric_embeddings=True,
            keep_best_checkpoint=False,
        )
        trainer = DoduoTrainer(
            dataset, tokenizer, encoder_config(tokenizer.vocab_size), config
        )
        history = trainer.train()
        losses = history.task_losses["type"]
        assert losses[-1] < losses[0]

    def test_numeric_bundle_roundtrip(self, substrate, tmp_path):
        from repro.core import Doduo, load_annotator, save_annotator

        dataset, tokenizer = substrate
        config = DoduoConfig(
            tasks=("type",), multi_label=False, epochs=1, batch_size=8,
            use_numeric_embeddings=True, keep_best_checkpoint=False,
        )
        trainer = DoduoTrainer(
            dataset, tokenizer, encoder_config(tokenizer.vocab_size), config
        )
        trainer.train()
        annotator = Doduo(trainer)
        save_annotator(annotator, tmp_path / "m")
        restored = load_annotator(tmp_path / "m")
        table = dataset.tables[0]
        assert restored.annotate(table).coltypes == annotator.annotate(table).coltypes
