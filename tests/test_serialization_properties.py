"""Property-based invariants of table serialization (hypothesis).

Whatever table the generators (or a user) produce, the serializer must emit
a structurally consistent encoding: every ``cls_positions`` entry points at
a ``[CLS]`` token, ``column_ids`` partitions the token sequence by column in
order, ``numeric_ids`` aligns one-to-one with tokens, and the per-column
token budget is never exceeded.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SerializerConfig, TableSerializer, column_visibility, pad_batch
from repro.datasets import Column, Table
from repro.encoding import column_fingerprint
from repro.text import train_wordpiece


@pytest.fixture(scope="module")
def tokenizer():
    corpus = [
        "alpha beta gamma", "delta epsilon", "2024 12 99", "x-1 y/2 z.3",
    ]
    return train_wordpiece(corpus, vocab_size=300)


cell = st.one_of(
    st.text(alphabet="abcdefgh ", min_size=0, max_size=12),
    st.integers(0, 10**9).map(str),
    st.floats(0, 1e6, allow_nan=False).map(lambda f: f"{f:.2f}"),
)

columns = st.lists(
    st.lists(cell, min_size=1, max_size=5).map(lambda vs: Column(values=vs)),
    min_size=1,
    max_size=5,
)


class TestSerializeTableProperties:
    @given(cols=columns, budget=st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_structure_invariants(self, tokenizer, cols, budget):
        serializer = TableSerializer(
            tokenizer,
            SerializerConfig(max_tokens_per_column=budget,
                             max_sequence_length=512),
        )
        table = Table(columns=cols)
        encoded = serializer.serialize_table(table)
        vocab = tokenizer.vocab

        # one [CLS] per column, each at its recorded position
        assert encoded.num_columns == table.num_columns
        for pos in encoded.cls_positions:
            assert encoded.token_ids[pos] == vocab.cls_id
        # sequence ends with [SEP] owned by no column
        assert encoded.token_ids[-1] == vocab.sep_id
        assert encoded.column_ids[-1] == -1
        # column ids are a non-decreasing partition 0..n-1 before the [SEP]
        body = encoded.column_ids[:-1]
        assert (np.diff(body) >= 0).all()
        assert set(body.tolist()) == set(range(table.num_columns))
        # numeric ids align with tokens
        assert len(encoded.numeric_ids) == len(encoded.token_ids)
        # per-column budget respected: tokens per column <= budget (+CLS)
        for col_index in range(table.num_columns):
            count = int((body == col_index).sum())
            assert count <= budget + 1

    @given(cols=columns)
    @settings(max_examples=30, deadline=None)
    def test_single_column_matches_table_column_count(self, tokenizer, cols):
        serializer = TableSerializer(tokenizer, SerializerConfig())
        table = Table(columns=cols)
        for c in range(table.num_columns):
            encoded = serializer.serialize_column(table, c)
            assert encoded.num_columns == 1
            assert encoded.token_ids[0] == tokenizer.vocab.cls_id


class TestBatchProperties:
    @given(data=st.data(), batch=st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_pad_batch_mask_covers_exactly_real_tokens(self, tokenizer, data, batch):
        serializer = TableSerializer(tokenizer, SerializerConfig())
        encoded = [
            serializer.serialize_table(Table(columns=data.draw(columns)))
            for _ in range(batch)
        ]
        token_ids, mask = pad_batch(encoded, pad_id=tokenizer.vocab.pad_id)
        assert token_ids.shape == mask.shape
        for row, item in enumerate(encoded):
            assert mask[row, : item.length].all()
            assert not mask[row, item.length:].any()
            assert (token_ids[row, item.length:] == tokenizer.vocab.pad_id).all()

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_visibility_is_column_block_diagonal(self, tokenizer, data):
        serializer = TableSerializer(tokenizer, SerializerConfig())
        encoded = [serializer.serialize_table(Table(columns=data.draw(columns)))]
        vis = column_visibility(encoded)[0]
        item = encoded[0]
        np.testing.assert_array_equal(vis, vis.T)  # symmetric relation
        for p in range(item.length):
            assert vis[p, p]  # self-visibility always
            for q in range(item.length):
                same_column = (
                    item.column_ids[p] == item.column_ids[q]
                    and item.column_ids[p] != -1
                )
                if p != q and vis[p, q]:
                    assert same_column


class TestColumnFingerprintProperties:
    """The content hash under which per-column work is cached must depend
    on exactly the column's own content — header and ordered cells — and
    nothing else (not the carrying table, not its neighbours, not its
    position)."""

    @given(cols=columns, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_invariant_under_other_column_reordering(self, tokenizer, cols, data):
        """Reordering the *other* columns moves a column's position but
        must change neither its fingerprint nor its single-column
        serialization — the soundness condition for content-addressing
        per-column work across tables."""
        perm = data.draw(st.permutations(range(len(cols))))
        serializer = TableSerializer(tokenizer, SerializerConfig())
        original = Table(columns=cols)
        shuffled = Table(columns=[cols[k] for k in perm])
        by_fingerprint = {}
        for c in range(original.num_columns):
            fp = column_fingerprint(original.columns[c])
            by_fingerprint[fp] = serializer.serialize_column(original, c)
        for c in range(shuffled.num_columns):
            fp = column_fingerprint(shuffled.columns[c])
            assert fp in by_fingerprint  # hash ignores position
            before = by_fingerprint[fp]
            after = serializer.serialize_column(shuffled, c)
            assert (after.token_ids == before.token_ids).all()
            assert (after.numeric_ids == before.numeric_ids).all()

    @given(cols=columns)
    @settings(max_examples=40, deadline=None)
    def test_sensitive_to_any_cell_edit(self, cols):
        for column in cols:
            for row, value in enumerate(column.values):
                edited_values = list(column.values)
                edited_values[row] = value + "!"
                edited = Column(values=edited_values, header=column.header)
                assert column_fingerprint(edited) != column_fingerprint(column)

    @given(values=st.lists(cell, min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_sensitive_to_header_and_boundaries(self, values):
        base = Column(values=values, header="h")
        assert column_fingerprint(base) != column_fingerprint(
            Column(values=values, header="h2")
        )
        # cell boundaries cannot collide: ["ab","c"] vs ["a","bc"]
        joined = "".join(values)
        if len(joined) >= 2 and len(values) >= 2:
            split_a = Column(values=[joined[:1], joined[1:]], header="h")
            split_b = Column(values=[joined[:2], joined[2:]], header="h")
            if split_a.values != split_b.values:
                assert column_fingerprint(split_a) != column_fingerprint(split_b)

    @given(cols=columns, budget=st.integers(1, 12))
    @settings(max_examples=30, deadline=None)
    def test_segment_assembly_equals_direct_serialization(
        self, tokenizer, cols, budget
    ):
        """Serializing from precomputed per-column segments (the segment
        cache's read path) must produce the same encoding as serializing
        from scratch — for the table-wise, single-column, and pair forms."""
        serializer = TableSerializer(
            tokenizer,
            SerializerConfig(max_tokens_per_column=budget,
                             max_sequence_length=512),
        )
        table = Table(columns=cols)
        segments = [serializer.column_segments(c) for c in table.columns]

        direct = serializer.serialize_table(table)
        via_segments = serializer.serialize_table(table, segments=segments)
        assert (via_segments.token_ids == direct.token_ids).all()
        assert (via_segments.column_ids == direct.column_ids).all()
        assert (via_segments.numeric_ids == direct.numeric_ids).all()

        for c in range(table.num_columns):
            d = serializer.serialize_column(table, c)
            s = serializer.serialize_column(table, c, segment=segments[c])
            assert (s.token_ids == d.token_ids).all()
            assert (s.numeric_ids == d.numeric_ids).all()

        if table.num_columns >= 2:
            d = serializer.serialize_column_pair(table, 0, 1)
            s = serializer.serialize_column_pair(
                table, 0, 1, segments=(segments[0], segments[1])
            )
            assert (s.token_ids == d.token_ids).all()
            assert (s.numeric_ids == d.numeric_ids).all()
