"""Tests for wide-table splitting and annotation (repro.core.wide)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.probe import ProbeBudget, ProbePlanner
from repro.core.wide import (
    PROFILE_CACHE,
    annotate_wide,
    cached_column_profile,
    column_similarity,
    split_columns_by_similarity,
    split_columns_contiguous,
    split_wide_table,
    subtable,
    validate_partition,
)
from repro.datasets import Column, Table


def make_wide_table(num_cols=8, num_rows=4) -> Table:
    return Table(
        columns=[
            Column(values=[f"c{c}v{r}" for r in range(num_rows)], header=f"h{c}")
            for c in range(num_cols)
        ],
        table_id="wide",
        relation_labels={(0, 1): ["r01"], (0, 5): ["r05"]},
    )


class TestContiguous:
    def test_exact_partition(self):
        groups = split_columns_contiguous(7, 3)
        assert groups == [[0, 1, 2], [3, 4, 5], [6]]

    def test_single_group_when_it_fits(self):
        assert split_columns_contiguous(3, 10) == [[0, 1, 2]]

    def test_zero_columns(self):
        assert split_columns_contiguous(0, 4) == []

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            split_columns_contiguous(5, 0)

    @given(n=st.integers(0, 40), cap=st.integers(1, 10))
    @settings(max_examples=60, deadline=None)
    def test_always_a_partition_under_cap(self, n, cap):
        groups = split_columns_contiguous(n, cap)
        validate_partition(groups, n)
        assert all(len(g) <= cap for g in groups)


class TestSimilarity:
    def test_identical_columns_grouped(self):
        table = Table(columns=[
            Column(values=["alpha beta", "gamma delta"]),
            Column(values=["1423", "9041"]),
            Column(values=["alpha beta", "gamma delta"]),
            Column(values=["1429", "9043"]),
        ])
        groups = split_columns_by_similarity(table, max_columns=2)
        as_sets = {frozenset(g) for g in groups}
        assert frozenset({0, 2}) in as_sets
        assert frozenset({1, 3}) in as_sets

    def test_cap_respected(self):
        table = make_wide_table(num_cols=9)
        groups = split_columns_by_similarity(table, max_columns=4)
        validate_partition(groups, 9)
        assert all(len(g) <= 4 for g in groups)

    def test_similarity_symmetric_and_bounded(self):
        a = Column(values=["san francisco", "new york"])
        b = Column(values=["san diego", "new orleans"])
        s_ab = column_similarity(a, b)
        s_ba = column_similarity(b, a)
        assert s_ab == s_ba
        assert 0.0 <= s_ab <= 1.0

    def test_identical_columns_have_similarity_one(self):
        col = Column(values=["same text", "more text"])
        assert column_similarity(col, col) == 1.0

    def test_empty_table(self):
        assert split_columns_by_similarity(Table(columns=[]), 3) == []

    def test_deterministic(self):
        table = make_wide_table(num_cols=6)
        a = split_columns_by_similarity(table, 3)
        b = split_columns_by_similarity(table, 3)
        assert a == b


class TestProfileMemoization:
    """Satellite regression: column 3-gram profiles are built once per
    column, not once per (i, j) pair."""

    def test_similarity_split_builds_each_profile_once(self):
        PROFILE_CACHE.clear()
        table = make_wide_table(num_cols=9)
        split_columns_by_similarity(table, max_columns=3)
        assert PROFILE_CACHE.misses == 9

        PROFILE_CACHE.clear()
        # Before memoization this cost k*(k-1) profile builds.
        wider = make_wide_table(num_cols=12)
        split_columns_by_similarity(wider, max_columns=4)
        assert PROFILE_CACHE.misses == 12

    def test_repeated_split_hits_cache(self):
        PROFILE_CACHE.clear()
        table = make_wide_table(num_cols=6)
        split_columns_by_similarity(table, max_columns=3)
        misses = PROFILE_CACHE.misses
        split_columns_by_similarity(table, max_columns=2)
        assert PROFILE_CACHE.misses == misses

    def test_cached_profile_matches_direct_similarity(self):
        a = Column(values=["san francisco", "new york"])
        b = Column(values=["san diego", "new orleans"])
        direct = column_similarity(a, b)
        grams_a, grams_b = cached_column_profile(a), cached_column_profile(b)
        union = grams_a | grams_b
        jaccard = len(grams_a & grams_b) / len(union) if union else 1.0
        assert direct == jaccard

    def test_nondefault_max_values_bypasses_cache(self):
        PROFILE_CACHE.clear()
        col = Column(values=[f"value {r}" for r in range(30)])
        cached_column_profile(col, max_values=5)
        assert PROFILE_CACHE.misses == 0
        assert cached_column_profile(col, max_values=5) < cached_column_profile(col)


class TestSplitWideTable:
    def test_rules_strategy(self):
        table = make_wide_table(num_cols=4)
        groups = split_wide_table(table, 2, strategy="rules", rules=[[0, 3], [1, 2]])
        assert groups == [[0, 3], [1, 2]]

    def test_rules_must_partition(self):
        table = make_wide_table(num_cols=4)
        with pytest.raises(ValueError, match="partition"):
            split_wide_table(table, 2, strategy="rules", rules=[[0, 1]])

    def test_rules_cap_enforced(self):
        table = make_wide_table(num_cols=4)
        with pytest.raises(ValueError, match="exceeds"):
            split_wide_table(table, 2, strategy="rules", rules=[[0, 1, 2], [3]])

    def test_rules_requires_rules(self):
        with pytest.raises(ValueError, match="requires"):
            split_wide_table(make_wide_table(), 2, strategy="rules")

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            split_wide_table(make_wide_table(), 2, strategy="zigzag")


class TestSubtable:
    def test_projection_keeps_relations_with_remapped_indices(self):
        table = make_wide_table()
        piece = subtable(table, [0, 5, 6], suffix="#a")
        assert piece.table_id == "wide#a"
        assert piece.num_columns == 3
        assert piece.relation_labels == {(0, 1): ["r05"]}
        assert piece.columns[1].header == "h5"

    def test_relations_crossing_groups_dropped(self):
        table = make_wide_table()
        piece = subtable(table, [1, 2])
        assert piece.relation_labels == {}


class TestAnnotateWide:
    @pytest.fixture(scope="class")
    def annotator(self, shared_tiny_annotator):
        return shared_tiny_annotator

    def test_annotates_all_columns_in_order(self, annotator):
        # Build a table wider than the trained substrate usually sees.
        table = make_wide_table(num_cols=10)
        result = annotate_wide(annotator, table, max_columns=4)
        assert len(result.coltypes) == 10
        assert all(types for types in result.coltypes)

    def test_matches_groupwise_annotation(self, annotator):
        table = make_wide_table(num_cols=6)
        wide = annotate_wide(annotator, table, max_columns=3,
                             strategy="contiguous")
        left = annotator.annotate(subtable(table, [0, 1, 2], suffix="#g0"))
        assert wide.coltypes[:3] == left.coltypes

    def test_embeddings_cover_every_column(self, annotator):
        table = make_wide_table(num_cols=7)
        result = annotate_wide(annotator, table, max_columns=3)
        assert result.colemb is not None
        assert result.colemb.shape[0] == 7
        assert not np.allclose(result.colemb, 0.0)

    def test_without_embeddings(self, annotator):
        table = make_wide_table(num_cols=5)
        result = annotate_wide(annotator, table, max_columns=2,
                               with_embeddings=False)
        assert result.colemb is None

    def test_relations_confined_to_groups(self, annotator):
        table = make_wide_table(num_cols=6)
        result = annotate_wide(annotator, table, max_columns=3)
        for (i, j) in result.colrels:
            assert i // 3 == j // 3  # contiguous groups of 3

    def test_default_budget_from_serializer(self, annotator):
        table = make_wide_table(num_cols=6)
        result = annotate_wide(annotator, table)
        assert len(result.coltypes) == 6

    def test_probe_planner_restricts_group_pairs(self, annotator):
        table = make_wide_table(num_cols=8)
        planner = ProbePlanner(ProbeBudget(max_pairs=2))
        result = annotate_wide(
            annotator, table, max_columns=4, probe_planner=planner
        )
        assert len(result.coltypes) == 8
        assert all(types for types in result.coltypes)
        # Each group of 4 columns planned at most 2 pairs.
        assert len(result.colrels) <= 4
        planned = set()
        for group_start in (0, 4):
            piece = subtable(table, list(range(group_start, group_start + 4)))
            for (i, j) in planner.plan(piece).pairs:
                planned.add((i + group_start, j + group_start))
        assert set(result.colrels) <= planned

    def test_probe_planner_matches_unplanned_types(self, annotator):
        table = make_wide_table(num_cols=6)
        baseline = annotate_wide(annotator, table, max_columns=3)
        planned = annotate_wide(
            annotator,
            table,
            max_columns=3,
            probe_planner=ProbePlanner(ProbeBudget(max_pairs=1)),
        )
        # Planning changes which relations are probed, never the types.
        assert planned.coltypes == baseline.coltypes
