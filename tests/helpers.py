"""Shared test utilities: numerical gradient checking and tiny fixtures."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn import Tensor


def numerical_gradient(
    fn: Callable[[np.ndarray], float],
    x: np.ndarray,
    eps: float = 1e-3,
) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        f_plus = fn(x)
        flat[i] = original - eps
        f_minus = fn(x)
        flat[i] = original
        grad_flat[i] = (f_plus - f_minus) / (2 * eps)
    return grad


def gradcheck(
    op: Callable[[Tensor], Tensor],
    x_data: np.ndarray,
    atol: float = 2e-2,
    rtol: float = 2e-2,
) -> None:
    """Assert that autograd gradients of ``sum(op(x))`` match finite differences."""
    x_data = np.asarray(x_data, dtype=np.float64).astype(np.float32)

    def scalar_fn(arr: np.ndarray) -> float:
        t = Tensor(arr.astype(np.float32))
        return float(op(t).sum().data)

    x = Tensor(x_data.copy(), requires_grad=True)
    out = op(x).sum()
    out.backward()
    analytic = x.grad.astype(np.float64)
    numeric = numerical_gradient(scalar_fn, x_data.astype(np.float64).copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)
