"""Tests for dataset statistics (repro.datasets.stats)."""

import pytest

from repro.datasets import (
    Column,
    Table,
    TableDataset,
    dataset_statistics,
    generate_viznet_dataset,
    generate_wikitable_dataset,
    relation_label_distribution,
    type_label_distribution,
)


def tiny_dataset() -> TableDataset:
    tables = [
        Table(
            columns=[
                Column(values=["a", "b"], type_labels=["t1", "t2"]),
                Column(values=["c", "d"], type_labels=["t1"]),
            ],
            table_id="x",
            relation_labels={(0, 1): ["r1"]},
        ),
        Table(
            columns=[Column(values=["e"], type_labels=["t2"])],
            table_id="y",
        ),
    ]
    return TableDataset(tables=tables, type_vocab=["t1", "t2"],
                        relation_vocab=["r1"], name="tiny")


class TestDatasetStatistics:
    def test_counts(self):
        stats = dataset_statistics(tiny_dataset())
        assert stats.num_tables == 2
        assert stats.num_columns == 3
        assert stats.num_annotated_columns == 3
        assert stats.num_annotated_pairs == 1
        assert stats.num_types == 2
        assert stats.num_relations == 1
        assert stats.single_column_tables == 1

    def test_multi_label_detection(self):
        stats = dataset_statistics(tiny_dataset())
        assert stats.max_labels_per_column == 2
        assert stats.is_multi_label

    def test_means(self):
        stats = dataset_statistics(tiny_dataset())
        assert stats.mean_columns_per_table == pytest.approx(1.5)
        assert stats.mean_rows_per_table == pytest.approx(1.5)

    def test_empty_dataset(self):
        stats = dataset_statistics(TableDataset(tables=[], type_vocab=[]))
        assert stats.num_tables == 0
        assert stats.mean_columns_per_table == 0.0
        assert not stats.is_multi_label

    def test_as_row_shows_dash_without_relations(self):
        dataset = generate_viznet_dataset(num_tables=5, seed=0)
        row = dataset_statistics(dataset).as_row()
        assert row[-1] == "–"

    def test_wikitable_shape_matches_paper_protocol(self):
        """WikiTable must be multi-label with relations; VizNet single-label."""
        wikitable = dataset_statistics(generate_wikitable_dataset(num_tables=30, seed=1))
        viznet = dataset_statistics(generate_viznet_dataset(num_tables=30, seed=1))
        assert wikitable.num_relations > 0
        assert wikitable.num_annotated_pairs > 0
        assert viznet.num_relations == 0
        assert viznet.max_labels_per_column == 1
        assert viznet.single_column_tables > 0  # "Full" vs "Multi-column only"


class TestLabelDistributions:
    def test_type_distribution_counts_columns(self):
        dist = type_label_distribution(tiny_dataset())
        assert dist == {"t1": 2, "t2": 2}

    def test_relation_distribution(self):
        dist = relation_label_distribution(tiny_dataset())
        assert dist == {"r1": 1}

    def test_distribution_sums_to_annotations(self):
        dataset = generate_wikitable_dataset(num_tables=25, seed=4)
        dist = type_label_distribution(dataset)
        total_labels = sum(
            len(col.type_labels) for t in dataset.tables for col in t.columns
        )
        assert sum(dist.values()) == total_labels

    def test_every_label_in_vocab(self):
        dataset = generate_wikitable_dataset(num_tables=25, seed=4)
        assert set(type_label_distribution(dataset)) <= set(dataset.type_vocab)
        assert set(relation_label_distribution(dataset)) <= set(dataset.relation_vocab)
