"""Tests for ASCII figure rendering (repro.evaluation.ascii_plots)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import bar_chart, heatmap, line_chart


class TestLineChart:
    def test_contains_markers_and_legend(self):
        text = line_chart(
            {"doduo": [0.8, 0.9], "dosolo": [0.7, 0.85]},
            x_labels=["10%", "100%"],
        )
        assert "o=doduo" in text
        assert "x=dosolo" in text

    def test_y_axis_bounds_printed(self):
        text = line_chart({"s": [0.25, 0.75]}, x_labels=["a", "b"])
        assert "0.750" in text
        assert "0.250" in text

    def test_higher_series_renders_above_lower(self):
        text = line_chart(
            {"high": [1.0, 1.0], "low": [0.0, 0.0]},
            x_labels=["a", "b"],
        )
        lines = text.splitlines()
        high_row = next(i for i, l in enumerate(lines) if "o" in l.split("|")[-1])
        low_row = next(i for i, l in enumerate(lines) if "x" in l.split("|")[-1])
        assert high_row < low_row

    def test_title(self):
        text = line_chart({"s": [1.0]}, x_labels=["x"], title="Figure 4")
        assert text.startswith("=== Figure 4 ===")

    def test_flat_series_ok(self):
        line_chart({"s": [0.5, 0.5, 0.5]}, x_labels=["a", "b", "c"])

    def test_empty_series_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            line_chart({}, x_labels=[])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="points"):
            line_chart({"s": [1.0]}, x_labels=["a", "b"])

    @given(
        values=st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=8),
        height=st.integers(4, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_never_crashes_and_has_fixed_height(self, values, height):
        labels = [str(i) for i in range(len(values))]
        text = line_chart({"s": values}, x_labels=labels, height=height)
        body = [l for l in text.splitlines() if "|" in l]
        assert len(body) == height


class TestHeatmap:
    def test_extremes_use_ramp_ends(self):
        matrix = np.array([[0.0, 1.0]])
        text = heatmap(matrix, ["r"], ["a", "b"])
        row = next(l for l in text.splitlines() if l.strip().startswith("r"))
        cells = row.split()[-1]
        assert cells[0] == " " or cells == "@"  # low end blank... but row strips
        assert "@" in row

    def test_range_printed(self):
        matrix = np.array([[0.25, 0.75]])
        text = heatmap(matrix, ["r"], ["a", "b"])
        assert "[0.2500, 0.7500]" in text

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="labels"):
            heatmap(np.zeros((2, 2)), ["r"], ["a", "b"])

    def test_non_2d_raises(self):
        with pytest.raises(ValueError, match="2-D"):
            heatmap(np.zeros(3), ["r"], ["a", "b", "c"])

    def test_constant_matrix_ok(self):
        heatmap(np.full((3, 3), 0.5), ["a", "b", "c"], ["x", "y", "z"])

    def test_row_count(self):
        text = heatmap(np.zeros((4, 2)), ["r1", "r2", "r3", "r4"], ["a", "b"])
        data_rows = [
            l for l in text.splitlines()
            if l.strip().startswith("r") and not l.startswith("ramp:")
        ]
        assert len(data_rows) == 4


class TestBarChart:
    def test_longest_bar_is_max(self):
        text = bar_chart({"a": 1.0, "b": 0.5}, width=20)
        line_a = next(l for l in text.splitlines() if l.strip().startswith("a"))
        line_b = next(l for l in text.splitlines() if l.strip().startswith("b"))
        assert line_a.count("#") == 20
        assert line_b.count("#") == 10

    def test_values_printed(self):
        text = bar_chart({"x": 0.123})
        assert "0.123" in text

    def test_zero_values_ok(self):
        text = bar_chart({"x": 0.0, "y": 0.0})
        assert "#" not in text

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            bar_chart({})
