"""Differential harness: optimized kernels vs the reference implementations.

The autograd kernels in :mod:`repro.nn.functional` and the Tensor forward
path *define the bytes*; every optimized twin in :mod:`repro.nn.kernels`
and the :class:`~repro.core.inference.InferenceSession` forward must
reproduce them exactly.  This module is the proof:

* in-place softmax/layernorm/gelu vs their allocating references on
  randomized shapes and seeds — ``==`` on output bytes, in float64 AND
  float32 (same ufunc sequence, same dtype → same bits);
* the proof-gated GEMMs (``matmul_into``, ``fused_qkv``) — the gate runs
  both forms on first call and must return reference bytes regardless of
  the verdict; a disproven shape must permanently fall back;
* the full fast forward (``kernels="fast"``) vs the reference Tensor path
  (``kernels="reference"``) through ``DoduoTrainer.annotate_batch`` —
  type scores, relations, and embeddings all ``==`` in the default
  float32 policy (this is the CI gate for the whole optimization layer);
* the float64 policy — bounded drift vs float32, never byte-mixed
  (distinct fingerprints).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DoduoConfig, DoduoTrainer
from repro.datasets import generate_wikitable_dataset
from repro.nn import TransformerConfig
from repro.nn import functional as F
from repro.nn.kernels import (
    ProofCache,
    Workspace,
    fused_qkv,
    gelu_,
    layer_norm_,
    matmul_into,
    softmax_,
)
from repro.nn.tensor import Tensor
from repro.text import train_wordpiece

DTYPES = (np.float32, np.float64)
SHAPES = ((3, 7), (2, 4, 9), (1, 2, 5, 6), (8, 1), (2, 3, 1))


def _rand(rng, shape, dtype):
    return rng.standard_normal(shape).astype(dtype) * 3.0


# ---------------------------------------------------------------------------
# In-place ufunc twins: byte-equal by construction, pinned here
# ---------------------------------------------------------------------------


class TestInPlaceKernels:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("shape", SHAPES)
    def test_softmax_bitwise(self, shape, seed, dtype):
        rng = np.random.default_rng(seed)
        x = _rand(rng, shape, dtype)
        reference = F.softmax(Tensor(x.copy())).data
        out = softmax_(x.copy())
        assert out.dtype == dtype
        assert (out == reference).all()

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("shape", SHAPES)
    def test_layer_norm_bitwise(self, shape, seed, dtype):
        rng = np.random.default_rng(seed + 100)
        x = _rand(rng, shape, dtype)
        gamma = _rand(rng, shape[-1:], dtype)
        beta = _rand(rng, shape[-1:], dtype)
        reference = F.layer_norm(
            Tensor(x.copy()), Tensor(gamma), Tensor(beta), eps=1e-5
        ).data
        out = layer_norm_(x.copy(), gamma, beta, 1e-5, Workspace())
        assert (out == reference).all()

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("shape", SHAPES)
    def test_gelu_bitwise(self, shape, seed, dtype):
        rng = np.random.default_rng(seed + 200)
        x = _rand(rng, shape, dtype)
        reference = F.gelu(Tensor(x.copy())).data
        out = gelu_(x.copy(), Workspace())
        assert (out == reference).all()

    def test_kernels_mutate_in_place(self):
        x = np.linspace(-2, 2, 12, dtype=np.float32).reshape(3, 4)
        out = softmax_(x)
        assert out is x  # no hidden allocation

    def test_workspace_scratch_reused(self):
        ws = Workspace()
        x = np.ones((4, 8), dtype=np.float32)
        gelu_(x.copy(), ws)
        scratch = ws.take("gelu", (4, 8), np.float32)
        gelu_(x.copy(), ws)
        assert ws.take("gelu", (4, 8), np.float32) is scratch


# ---------------------------------------------------------------------------
# Proof-gated GEMMs: reference bytes no matter the verdict
# ---------------------------------------------------------------------------


class TestProofGatedMatmul:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize(
        "a_shape,b_shape",
        [((5, 7), (7, 3)), ((2, 5, 7), (7, 3)), ((2, 3, 5, 7), (2, 3, 7, 4))],
    )
    def test_matmul_into_bitwise(self, a_shape, b_shape, dtype):
        rng = np.random.default_rng(7)
        a = _rand(rng, a_shape, dtype)
        b = _rand(rng, b_shape, dtype)
        ws = Workspace()
        reference = a @ b
        first = matmul_into(a, b, ws, "t")  # proof pass
        second = matmul_into(a, b, ws, "t")  # verdict pass
        assert (first == reference).all()
        assert (second == reference).all()
        assert ws.proofs.proofs_run == 1

    def test_matmul_disproven_falls_back(self):
        rng = np.random.default_rng(8)
        a = _rand(rng, (4, 6), np.float32)
        b = _rand(rng, (6, 5), np.float32)
        ws = Workspace()
        key = ("matmul", "t", a.shape, b.shape, a.dtype.str)
        ws.proofs.record(key, False)  # simulate a platform where out= differs
        out = matmul_into(a, b, ws, "t")
        assert (out == a @ b).all()
        assert "t" not in ws._buffers  # reference form, no workspace write

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("rows", [1, 3, 8])
    def test_fused_qkv_bitwise(self, rows, dtype):
        rng = np.random.default_rng(rows)
        d = 16
        x = _rand(rng, (2, rows, d), dtype)
        w = [_rand(rng, (d, d), dtype) for _ in range(3)]
        b = [_rand(rng, (d,), dtype) for _ in range(3)]
        w_qkv = np.concatenate(w, axis=1)
        b_qkv = np.concatenate(b)
        expected = [x @ w[i] + b[i] for i in range(3)]
        ws = Workspace()
        for _ in range(2):  # proof pass, then verdict pass
            q, k, v = fused_qkv(
                x, w[0], b[0], w[1], b[1], w[2], b[2], w_qkv, b_qkv, ws
            )
            assert (q == expected[0]).all()
            assert (k == expected[1]).all()
            assert (v == expected[2]).all()
        assert ws.proofs.proofs_run == 1

    def test_fused_qkv_disproven_falls_back(self):
        rng = np.random.default_rng(3)
        d = 8
        x = _rand(rng, (1, 4, d), np.float32)
        w = [_rand(rng, (d, d), np.float32) for _ in range(3)]
        b = [_rand(rng, (d,), np.float32) for _ in range(3)]
        w_qkv = np.concatenate(w, axis=1)
        b_qkv = np.concatenate(b)
        ws = Workspace()
        ws.proofs.record(("fused_qkv", x.shape, d, x.dtype.str), False)
        q, k, v = fused_qkv(
            x, w[0], b[0], w[1], b[1], w[2], b[2], w_qkv, b_qkv, ws
        )
        assert (q == x @ w[0] + b[0]).all()
        assert (k == x @ w[1] + b[1]).all()
        assert (v == x @ w[2] + b[2]).all()
        assert ws.proofs.proofs_failed == 1  # the injected verdict, no retry

    def test_proof_cache_counters(self):
        proofs = ProofCache()
        assert proofs.verdict("k") is None
        proofs.record("k", True)
        proofs.record("j", False)
        assert proofs.verdict("k") is True
        assert proofs.verdict("j") is False
        assert proofs.proofs_run == 2
        assert proofs.proofs_failed == 1


class TestWorkspace:
    def test_buffer_identity_and_resize(self):
        ws = Workspace()
        a = ws.take("x", (4, 8), np.float32)
        assert ws.take("x", (4, 8), np.float32) is a  # steady state: reuse
        b = ws.take("x", (2, 8), np.float32)  # geometry change: realloc
        assert b is not a
        c = ws.take("x", (2, 8), np.float64)  # dtype change: realloc
        assert c is not b
        assert ws.allocated_bytes == c.nbytes  # one live buffer per name


# ---------------------------------------------------------------------------
# Full forward: fast session vs reference Tensor path
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def trainer():
    dataset = generate_wikitable_dataset(num_tables=20, seed=11, max_rows=4)
    tokenizer = train_wordpiece(dataset.all_cell_text(), vocab_size=600)
    encoder = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        hidden_dim=32,
        num_layers=2,
        num_heads=2,
        ffn_dim=64,
        max_position=160,
        num_segments=8,
        dropout=0.0,
    )
    config = DoduoConfig(epochs=1, batch_size=8, keep_best_checkpoint=False)
    t = DoduoTrainer(dataset, tokenizer, encoder, config)
    t.train()
    return t


def _annotation_bytes(trainer, tables, **kwargs):
    raw = trainer.annotate_batch(tables, with_embeddings=True, **kwargs)
    return [
        (r.type_probs, dict(r.relation_probs), r.embeddings) for r in raw
    ]


class TestFullForwardIdentity:
    def test_fast_equals_reference_float32(self, trainer):
        """THE acceptance gate: optimized annotation == reference, ``==``."""
        tables = trainer.dataset.tables[:6]
        fast = _annotation_bytes(trainer, tables, kernels="fast")
        reference = _annotation_bytes(trainer, tables, kernels="reference")
        for (ft, fr, fe), (rt, rr, re) in zip(fast, reference):
            assert (ft == rt).all()
            assert fr.keys() == rr.keys()
            for pair in fr:
                assert (fr[pair] == rr[pair]).all()
            assert (fe == re).all()

    def test_fast_batched_equals_sequential(self, trainer):
        tables = trainer.dataset.tables[:6]
        batched = _annotation_bytes(trainer, tables, kernels="fast")
        sequential = [
            _annotation_bytes(trainer, [t], kernels="fast")[0] for t in tables
        ]
        for (bt, br, be), (st, sr, se) in zip(batched, sequential):
            assert (bt == st).all()
            for pair in br:
                assert (br[pair] == sr[pair]).all()
            assert (be == se).all()

    def test_session_proofs_all_pass_here(self, trainer):
        """On this platform every shape proof must hold (the gate exists
        for platforms where it might not — a failure is a fallback, not a
        wrong byte — but locally we expect 100% proven)."""
        trainer.annotate_batch(trainer.dataset.tables[:4], kernels="fast")
        session = trainer.model.inference_session("float32")
        assert session.workspace.proofs.proofs_run > 0
        assert session.workspace.proofs.proofs_failed == 0

    def test_float64_policy_bounded_drift(self, trainer):
        tables = trainer.dataset.tables[:4]
        f32 = _annotation_bytes(trainer, tables, kernels="fast")
        f64 = _annotation_bytes(
            trainer, tables, kernels="fast", compute_dtype="float64"
        )
        for (t32, _, e32), (t64, _, e64) in zip(f32, f64):
            assert t64.dtype == np.float64
            # float32 arithmetic carries ~1e-7 relative error; the float64
            # path is the higher-precision answer, so the gap is bounded by
            # the float32 error scale, not equality.
            assert np.abs(t32 - t64).max() < 1e-4
            assert np.abs(e32 - e64).max() < 1e-3
            assert np.abs(t32 - t64).max() > 0.0  # genuinely different path

    def test_dtype_folds_into_fingerprint(self, trainer):
        f32 = trainer.annotation_fingerprint()
        f64 = trainer.annotation_fingerprint(dtype="float64")
        assert f32 != f64
        assert trainer.annotation_fingerprint(dtype="float32") == f32

    def test_reference_path_rejects_float64(self, trainer):
        with pytest.raises(ValueError):
            trainer.annotate_batch(
                trainer.dataset.tables[:1],
                kernels="reference",
                compute_dtype="float64",
            )

    def test_training_mode_invalidates_sessions(self, trainer):
        trainer.annotate_batch(trainer.dataset.tables[:1], kernels="fast")
        assert trainer.model._sessions
        trainer.model.train()
        assert not trainer.model._sessions  # stale fused weights dropped
        trainer.model.eval()

    def test_session_stale_after_load_state_dict(self, trainer):
        trainer.annotate_batch(trainer.dataset.tables[:1], kernels="fast")
        state = trainer.model.state_dict()
        trainer.model.load_state_dict(state)
        assert not trainer.model._sessions
        # and a fresh session rebuilds against the new arrays
        reference = _annotation_bytes(
            trainer, trainer.dataset.tables[:2], kernels="reference"
        )
        fast = _annotation_bytes(
            trainer, trainer.dataset.tables[:2], kernels="fast"
        )
        for (ft, _, fe), (rt, _, re) in zip(fast, reference):
            assert (ft == rt).all()
            assert (fe == re).all()
