"""Tests for the KB and the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    Column,
    DatasetSplits,
    KnowledgeBase,
    NUMERIC_TYPES_TABLE5,
    RELATION_TEMPLATES,
    SCHEMAS,
    Table,
    TYPE_HIERARCHY,
    case_study_clusters,
    generate_enterprise_dataset,
    generate_viznet_dataset,
    generate_wikitable_dataset,
    multi_column_only,
    numeric_fraction,
    split_dataset,
    training_fraction,
    viznet_type_vocab,
    wikitable_relation_vocab,
    wikitable_type_vocab,
)
from repro.datasets.viznet import THEMES, VALUE_GENERATORS
from repro.datasets.wikitable import ATTRIBUTE_INFO, NUMERIC_INFO

from helpers import rng


class TestKnowledgeBase:
    @pytest.fixture(scope="class")
    def kb(self):
        return KnowledgeBase(rng(13))

    def test_deterministic(self):
        a = KnowledgeBase(rng(5))
        b = KnowledgeBase(rng(5))
        assert [e.name for e in a.entities["film"]] == [e.name for e in b.entities["film"]]

    def test_expected_types_present(self, kb):
        for entity_type in ("film", "director", "producer", "city", "country",
                            "company", "sports_team", "album", "book", "athlete"):
            assert len(kb.entities[entity_type]) > 0

    def test_films_have_consistent_attributes(self, kb):
        for film in kb.entities["film"]:
            assert film.attributes["film.directed_by"].entity_type == "director"
            assert film.attributes["film.produced_by"].entity_type == "producer"
            assert film.attributes["film.release_country"].entity_type == "country"
            year = int(film.numeric["film.release_year"])
            assert 1950 <= year <= 2021

    def test_people_have_birth_city(self, kb):
        for person in kb.entities["athlete"]:
            assert person.attributes["person.place_of_birth"].entity_type == "city"
            assert person.attributes["athlete.team_roster"].entity_type == "sports_team"

    def test_sample_distinct(self, kb):
        entities = kb.sample("film", 10, rng(0))
        names = [e.name for e in entities]
        assert len(set(names)) == 10

    def test_sample_too_many_raises(self, kb):
        with pytest.raises(ValueError):
            kb.sample("country", 10_000, rng(0))

    def test_name_ambiguity_across_professions(self, kb):
        """Some surface names must appear in multiple professions (the
        George Miller property motivating table context)."""
        director_names = {e.name for e in kb.entities["director"]}
        producer_names = {e.name for e in kb.entities["producer"]}
        director_firsts = {n.split()[0] for n in director_names}
        producer_firsts = {n.split()[0] for n in producer_names}
        assert director_firsts & producer_firsts

    def test_verbalize_covers_relations_and_types(self, kb):
        sentences = kb.verbalize(rng(0))
        text = " || ".join(sentences)
        assert "is directed by" in text
        assert "was born in" in text
        assert "is a director" in text

    def test_scale_parameter(self):
        small = KnowledgeBase(rng(1), scale=0.5)
        large = KnowledgeBase(rng(1), scale=1.0)
        assert len(small.entities["film"]) < len(large.entities["film"])


class TestTableModel:
    def make_table(self):
        return Table(
            columns=[
                Column(values=["a", "b", "c"], type_labels=["t1"]),
                Column(values=["1", "2", "3"], type_labels=["t2"]),
            ],
            table_id="t",
            relation_labels={(0, 1): ["rel"]},
        )

    def test_shapes(self):
        table = self.make_table()
        assert table.num_columns == 2
        assert table.num_rows == 3

    def test_shuffled_rows_keeps_row_alignment(self):
        table = self.make_table()
        shuffled = table.shuffled_rows(rng(0))
        pairs = set(zip(shuffled.columns[0].values, shuffled.columns[1].values))
        assert pairs == {("a", "1"), ("b", "2"), ("c", "3")}

    def test_shuffled_columns_remaps_relations(self):
        table = self.make_table()
        shuffled = table.shuffled_columns(rng(3))
        # find where the original columns went
        values0 = tuple(table.columns[0].values)
        new_idx = [i for i, c in enumerate(shuffled.columns) if tuple(c.values) == values0][0]
        other = 1 - new_idx
        assert shuffled.relation_labels[(new_idx, other)] == ["rel"]

    def test_values_coerced_to_str(self):
        column = Column(values=[1, 2.5, "x"])
        assert column.values == ["1", "2.5", "x"]


class TestWikiTable:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_wikitable_dataset(num_tables=60, seed=7)

    def test_size(self, dataset):
        assert len(dataset) == 60

    def test_all_labels_in_vocab(self, dataset):
        vocab = set(dataset.type_vocab)
        rel_vocab = set(dataset.relation_vocab)
        for table in dataset.tables:
            for column in table.columns:
                assert column.type_labels, "every column is annotated"
                assert set(column.type_labels) <= vocab
            for pair, labels in table.relation_labels.items():
                assert set(labels) <= rel_vocab
                assert pair[0] == 0, "relations link the subject column"

    def test_multi_label_columns_exist(self, dataset):
        assert any(
            len(col.type_labels) > 1
            for table in dataset.tables
            for col in table.columns
        )

    def test_rows_consistent_with_kb(self, dataset):
        """Director cells in films_crew tables belong to the film's row."""
        films_crew = [t for t in dataset.tables if t.metadata.get("schema") == "films_crew"]
        assert films_crew, "expected at least one films_crew table"
        table = films_crew[0]
        assert table.columns[1].type_labels == ["people.person", "film.director"]

    def test_deterministic(self):
        a = generate_wikitable_dataset(num_tables=10, seed=3)
        b = generate_wikitable_dataset(num_tables=10, seed=3)
        assert a.tables[0].columns[0].values == b.tables[0].columns[0].values

    def test_vocab_helpers_consistent(self):
        assert set(wikitable_type_vocab()) == {
            label for labels in TYPE_HIERARCHY.values() for label in labels
        }
        assert set(wikitable_relation_vocab()) == set(ATTRIBUTE_INFO) | set(NUMERIC_INFO)

    def test_schemas_reference_known_attributes(self):
        for schema in SCHEMAS:
            for attribute in schema.attributes:
                assert attribute in ATTRIBUTE_INFO or attribute in NUMERIC_INFO

    def test_ambiguous_relation_pairs_exist(self, dataset):
        """place_of_birth and place_lived both map (person, city) pairs."""
        relations = {
            label
            for table in dataset.tables
            for labels in table.relation_labels.values()
            for label in labels
        }
        assert "person.place_of_birth" in relations
        assert "person.place_lived" in relations


class TestVizNet:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_viznet_dataset(num_tables=200, seed=11)

    def test_single_label(self, dataset):
        for table in dataset.tables:
            for column in table.columns:
                assert len(column.type_labels) == 1

    def test_no_relations(self, dataset):
        assert dataset.num_relations == 0
        assert all(not t.relation_labels for t in dataset.tables)

    def test_types_cover_table5_numeric_types(self):
        vocab = set(viznet_type_vocab())
        assert set(NUMERIC_TYPES_TABLE5) <= vocab

    def test_single_column_tables_exist(self, dataset):
        assert any(t.num_columns == 1 for t in dataset.tables)

    def test_multi_column_only_filter(self, dataset):
        filtered = multi_column_only(dataset)
        assert all(t.num_columns >= 2 for t in filtered.tables)
        assert len(filtered) < len(dataset)

    def test_theme_types_are_generated_types(self):
        for theme, types in THEMES.items():
            for t in types:
                assert t in VALUE_GENERATORS, f"{theme}: {t}"

    def test_numeric_fraction(self):
        assert numeric_fraction(["1", "2", "3"]) == 1.0
        assert numeric_fraction(["a", "b"]) == 0.0
        assert numeric_fraction(["1", "a"]) == 0.5
        assert numeric_fraction(["1/2/1999"]) == 1.0
        assert numeric_fraction([]) == 0.0

    def test_year_columns_mostly_numeric(self, dataset):
        year_cols = [
            c for t in dataset.tables for c in t.columns if c.type_labels == ["year"]
        ]
        assert year_cols
        for col in year_cols:
            assert numeric_fraction(col.values) == 1.0

    def test_context_only_types_share_distribution(self):
        """birthPlace and city values must be indistinguishable in isolation."""
        generator = rng(0)
        city_values = {VALUE_GENERATORS["city"](generator) for _ in range(300)}
        generator = rng(0)
        bp_values = {VALUE_GENERATORS["birthPlace"](generator) for _ in range(300)}
        assert city_values == bp_values


class TestEnterprise:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_enterprise_dataset(seed=23)

    def test_ten_tables_fifty_columns(self, dataset):
        assert len(dataset.tables) == 10
        assert sum(t.num_columns for t in dataset.tables) == 50

    def test_fifteen_clusters(self, dataset):
        clusters = {
            c.type_labels[0] for t in dataset.tables for c in t.columns
        }
        assert len(clusters) == 15
        assert clusters == set(case_study_clusters())

    def test_headers_vary_for_same_cluster(self, dataset):
        headers_by_cluster = {}
        for table in dataset.tables:
            for column in table.columns:
                headers_by_cluster.setdefault(column.type_labels[0], set()).add(column.header)
        # at least one cluster is named differently across tables
        assert any(len(headers) > 1 for headers in headers_by_cluster.values())

    def test_every_cluster_in_at_least_two_tables(self, dataset):
        tables_by_cluster = {}
        for i, table in enumerate(dataset.tables):
            for column in table.columns:
                tables_by_cluster.setdefault(column.type_labels[0], set()).add(i)
        assert all(len(tables) >= 2 for tables in tables_by_cluster.values())


class TestSplits:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_viznet_dataset(num_tables=100, seed=1)

    def test_partition(self, dataset):
        splits = split_dataset(dataset, valid_fraction=0.1, test_fraction=0.2, seed=0)
        total = len(splits.train) + len(splits.valid) + len(splits.test)
        assert total == len(dataset)
        ids = lambda d: {t.table_id for t in d.tables}
        assert not (ids(splits.train) & ids(splits.test))
        assert not (ids(splits.train) & ids(splits.valid))

    def test_invalid_fractions(self, dataset):
        with pytest.raises(ValueError):
            split_dataset(dataset, valid_fraction=0.5, test_fraction=0.6)

    def test_training_fraction(self, dataset):
        splits = split_dataset(dataset, seed=0)
        reduced = training_fraction(splits, 0.5, seed=0)
        assert len(reduced.train) == round(len(splits.train) * 0.5)
        assert reduced.test is splits.test

    def test_training_fraction_bounds(self, dataset):
        splits = split_dataset(dataset, seed=0)
        with pytest.raises(ValueError):
            training_fraction(splits, 0.0)
        with pytest.raises(ValueError):
            training_fraction(splits, 1.5)

    def test_deterministic(self, dataset):
        a = split_dataset(dataset, seed=4)
        b = split_dataset(dataset, seed=4)
        assert [t.table_id for t in a.train.tables] == [t.table_id for t in b.train.tables]


class TestDatasetContainer:
    def test_type_and_relation_ids(self):
        dataset = generate_wikitable_dataset(num_tables=5, seed=0)
        for i, name in enumerate(dataset.type_vocab):
            assert dataset.type_id(name) == i
        with pytest.raises(KeyError):
            dataset.type_id("no.such.type")
        with pytest.raises(KeyError):
            dataset.relation_id("no.such.rel")

    def test_counts(self):
        dataset = generate_wikitable_dataset(num_tables=10, seed=0)
        assert dataset.num_annotated_columns() == sum(
            t.num_columns for t in dataset.tables
        )
        assert dataset.num_annotated_pairs() == sum(
            len(t.relation_labels) for t in dataset.tables
        )

    def test_subset_preserves_vocab(self):
        dataset = generate_viznet_dataset(num_tables=20, seed=0)
        sub = dataset.subset([0, 1, 2])
        assert sub.type_vocab == dataset.type_vocab
        assert len(sub) == 3

    def test_all_cell_text(self):
        dataset = generate_viznet_dataset(num_tables=3, seed=0)
        cells = dataset.all_cell_text()
        assert len(cells) == sum(
            col.num_rows for t in dataset.tables for col in t.columns
        )
