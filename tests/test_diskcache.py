"""The persistent result-cache tier: DiskCache + engine integration.

The load-bearing guarantees:

* a disk hit reproduces the producing pass **byte-identically** (floats
  survive the JSON round trip exactly, embeddings keep dtype and shape);
* a fresh engine over a warmed cache directory answers a repeated corpus
  with **zero** encoder passes — the cross-restart guarantee;
* entries are invalidated (clean misses, no stale bytes) when the model
  fingerprint or the request options change;
* corrupt segment lines are skipped and counted, never fatal.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import DoduoConfig, DoduoTrainer
from repro.datasets import generate_wikitable_dataset
from repro.nn import TransformerConfig
from repro.serving import (
    AnnotationEngine,
    AnnotationOptions,
    AnnotationRequest,
    DiskCache,
    EngineConfig,
    result_cache_key,
)
from repro.text import train_wordpiece


def _train(dataset, **config_overrides) -> DoduoTrainer:
    tokenizer = train_wordpiece(dataset.all_cell_text(), vocab_size=600)
    encoder_config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        hidden_dim=32,
        num_layers=2,
        num_heads=2,
        ffn_dim=64,
        max_position=160,
        num_segments=8,
        dropout=0.0,
    )
    config = DoduoConfig(
        epochs=1, batch_size=8, keep_best_checkpoint=False, **config_overrides
    )
    trainer = DoduoTrainer(dataset, tokenizer, encoder_config, config)
    trainer.train()
    return trainer


@pytest.fixture(scope="module")
def dataset():
    return generate_wikitable_dataset(num_tables=20, seed=11, max_rows=4)


@pytest.fixture(scope="module")
def trainer(dataset):
    return _train(dataset)


@pytest.mark.smoke
class TestDiskCacheStore:
    """DiskCache as a plain key/payload store."""

    def test_put_get_roundtrip(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k1", {"value": [1.5, "x"]})
        assert cache.get("k1") == {"value": [1.5, "x"]}
        assert cache.get("missing") is None
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        assert len(cache) == 1 and "k1" in cache

    def test_entries_survive_reopen(self, tmp_path):
        with DiskCache(tmp_path) as cache:
            cache.put("k", {"n": 7})
        reopened = DiskCache(tmp_path)
        assert reopened.get("k") == {"n": 7}
        assert len(reopened) == 1

    def test_entries_are_immutable(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k", {"v": 1})
        cache.put("k", {"v": 2})  # first write wins
        assert cache.get("k") == {"v": 1}
        assert cache.stats.writes == 1

    def test_segment_rotation(self, tmp_path):
        cache = DiskCache(tmp_path, max_segment_records=2)
        for i in range(5):
            cache.put(f"k{i}", {"i": i})
        segments = sorted(tmp_path.glob("segment-*.jsonl"))
        assert len(segments) == 3  # 2 + 2 + 1
        reopened = DiskCache(tmp_path, max_segment_records=2)
        assert {reopened.get(f"k{i}")["i"] for i in range(5)} == set(range(5))

    def test_reopen_continues_partial_segment(self, tmp_path):
        with DiskCache(tmp_path, max_segment_records=4) as cache:
            cache.put("a", {})
        with DiskCache(tmp_path, max_segment_records=4) as cache:
            cache.put("b", {})
        assert len(list(tmp_path.glob("segment-*.jsonl"))) == 1
        assert len(DiskCache(tmp_path)) == 2

    def test_corrupt_lines_skipped_and_counted(self, tmp_path):
        with DiskCache(tmp_path) as cache:
            cache.put("good", {"ok": True})
            cache.put("also-good", {"ok": True})
        segment = next(tmp_path.glob("segment-*.jsonl"))
        lines = segment.read_bytes().splitlines(keepends=True)
        # Torn write in the middle: truncated JSON plus garbage bytes.
        segment.write_bytes(
            lines[0] + b'{"key": "torn", "payl\n' + b"\xff\xfe garbage\n" + lines[1]
        )
        recovered = DiskCache(tmp_path)
        assert recovered.stats.corrupt_records == 2
        assert recovered.get("good") == {"ok": True}
        assert recovered.get("also-good") == {"ok": True}
        assert len(recovered) == 2
        # Recovery keeps the store writable.
        recovered.put("new", {"ok": 1})
        assert DiskCache(tmp_path).get("new") == {"ok": 1}

    def test_torn_tail_does_not_swallow_next_record(self, tmp_path):
        """A crash can leave the newest segment without a trailing newline;
        the next append must start on a fresh line or its record would be
        merged into the torn bytes and lost at the following scan."""
        with DiskCache(tmp_path) as cache:
            cache.put("survivor", {"ok": True})
        segment = next(tmp_path.glob("segment-*.jsonl"))
        with open(segment, "ab") as handle:
            handle.write(b'{"key": "torn", "payload"')  # no newline
        reopened = DiskCache(tmp_path)
        assert reopened.stats.corrupt_records == 1
        reopened.put("after-crash", {"n": 1})
        assert reopened.get("after-crash") == {"n": 1}
        reopened.close()
        # The record written after recovery survives the *next* restart.
        final = DiskCache(tmp_path)
        assert final.get("after-crash") == {"n": 1}
        assert final.get("survivor") == {"ok": True}
        assert final.stats.corrupt_records == 1

    def test_clear(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k", {})
        cache.clear()
        assert len(cache) == 0
        assert list(tmp_path.glob("segment-*.jsonl")) == []
        cache.put("k2", {"v": 2})  # still usable after clear
        assert cache.get("k2") == {"v": 2}

    def test_invalid_segment_size_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_segment_records"):
            DiskCache(tmp_path, max_segment_records=0)

    def test_invalid_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            DiskCache(tmp_path, max_bytes=-1)


@pytest.mark.smoke
class TestDiskCacheGrowthControl:
    """compact() and the max_bytes bound: the tier no longer grows forever."""

    def test_compact_preserves_every_live_record(self, tmp_path):
        with DiskCache(tmp_path, max_segment_records=3) as cache:
            for i in range(10):
                cache.put(f"k{i}", {"i": i})
            result = cache.compact()
            assert result.records == 10
            assert result.bytes_after <= result.bytes_before
            for i in range(10):
                assert cache.get(f"k{i}") == {"i": i}
            # Still writable after the swap, and everything survives reopen.
            cache.put("post", {"ok": True})
        reopened = DiskCache(tmp_path, max_segment_records=3)
        assert len(reopened) == 11
        assert reopened.get("post") == {"ok": True}

    def test_compact_drops_corrupt_lines(self, tmp_path):
        with DiskCache(tmp_path) as cache:
            cache.put("a", {"v": 1})
            cache.put("b", {"v": 2})
        segment = next(tmp_path.glob("segment-*.jsonl"))
        lines = segment.read_bytes().splitlines(keepends=True)
        segment.write_bytes(lines[0] + b"{torn garbage\n" + lines[1])
        cache = DiskCache(tmp_path)
        assert cache.stats.corrupt_records == 1
        bytes_with_garbage = cache.total_bytes
        result = cache.compact()
        assert result.records == 2
        assert result.bytes_after < bytes_with_garbage
        assert cache.get("a") == {"v": 1}
        assert cache.get("b") == {"v": 2}
        # The rewritten log scans clean.
        assert DiskCache(tmp_path).stats.corrupt_records == 0

    def test_compact_empty_cache(self, tmp_path):
        cache = DiskCache(tmp_path)
        result = cache.compact()
        assert result.records == 0
        assert result.reclaimed_bytes == 0
        cache.put("k", {})  # usable afterwards
        assert cache.get("k") == {}

    def test_max_bytes_evicts_oldest_segments(self, tmp_path):
        with DiskCache(tmp_path, max_segment_records=2) as cache:
            for i in range(8):
                cache.put(f"k{i}", {"i": i})
            full_bytes = cache.total_bytes
        bounded = DiskCache(
            tmp_path, max_segment_records=2, max_bytes=full_bytes // 2
        )
        assert bounded.total_bytes <= full_bytes // 2
        assert bounded.stats.evicted_records > 0
        # Oldest entries went first; the newest survive.
        assert bounded.get("k0") is None
        assert bounded.get("k7") == {"i": 7}

    def test_max_bytes_enforced_during_writes(self, tmp_path):
        cache = DiskCache(tmp_path, max_segment_records=2, max_bytes=120)
        for i in range(20):
            cache.put(f"k{i}", {"i": i})
        # The bound may be overshot by at most the active segment.
        assert cache.total_bytes <= 120 + 2 * 40
        assert len(cache) < 20
        assert cache.get("k19") == {"i": 19}  # newest always served

    def test_active_segment_never_evicted(self, tmp_path):
        cache = DiskCache(tmp_path, max_segment_records=100, max_bytes=1)
        cache.put("only", {"v": 1})
        # One active segment holding more than max_bytes: kept anyway.
        assert cache.get("only") == {"v": 1}
        assert cache.stats.evicted_records == 0

    def test_foreign_glob_matches_never_deleted(self, tmp_path):
        """A foreign file matching the segment glob is skipped by the scan;
        eviction, compaction, and clear must leave it alone too."""
        foreign = tmp_path / "segment-old.jsonl"
        foreign.write_text("user data, not ours\n")
        cache = DiskCache(tmp_path, max_segment_records=2, max_bytes=1)
        for i in range(6):
            cache.put(f"k{i}", {"i": i})  # forces eviction of old segments
        cache.compact()
        cache.clear()
        assert foreign.read_text() == "user data, not ours\n"
        assert cache.total_bytes == 0  # foreign bytes never entered accounting


class TestWriterLockAndDryRun:
    """The advisory writer lock and the non-mutating compaction preview
    that make `repro cache compact` safe against live processes."""

    def test_writer_lock_held_while_open_released_on_close(self, tmp_path):
        from repro.serving import FileLock
        from repro.serving.diskcache import WRITER_LOCK_NAME

        cache = DiskCache(tmp_path)
        cache.put("k", {"v": 1})
        assert cache.holds_writer_lock
        assert FileLock.is_locked(tmp_path / WRITER_LOCK_NAME)
        cache.close()
        assert not cache.holds_writer_lock
        assert not FileLock.is_locked(tmp_path / WRITER_LOCK_NAME)

    def test_second_writer_cannot_compact(self, tmp_path):
        from repro.serving import CacheLockedError

        first = DiskCache(tmp_path)
        try:
            first.put("k", {"v": 1})
            second = DiskCache(tmp_path)
            try:
                # flock is per open file description, so even an
                # in-process second handle observes the contention.
                assert not second.holds_writer_lock
                with pytest.raises(CacheLockedError):
                    second.compact()
            finally:
                second.close()
            # The holder itself may still compact.
            assert first.compact().records == 1
        finally:
            first.close()

    def test_dry_run_projection_matches_real_compaction(self, tmp_path):
        with DiskCache(tmp_path, max_segment_records=2) as cache:
            for i in range(7):
                cache.put(f"k{i}", {"i": i})
        # Add dead weight: a corrupt line a real compaction would drop.
        segment = sorted(tmp_path.glob("segment-*.jsonl"))[0]
        with open(segment, "ab") as handle:
            handle.write(b"{torn garbage\n")
        with DiskCache(tmp_path) as cache:
            files_before = sorted(
                (p.name, p.stat().st_size) for p in tmp_path.glob("*.jsonl")
            )
            dry = cache.compact(dry_run=True)
            assert dry.dry_run
            assert sorted(
                (p.name, p.stat().st_size) for p in tmp_path.glob("*.jsonl")
            ) == files_before  # nothing rewritten
            assert dry.reclaimed_bytes > 0  # the garbage line is dead space
            real = cache.compact()
        assert not real.dry_run
        assert real.records == dry.records == 7
        assert real.bytes_after == dry.bytes_after
        assert real.reclaimed_bytes == dry.reclaimed_bytes

    def test_dry_run_works_without_the_writer_lock(self, tmp_path):
        writer = DiskCache(tmp_path)
        try:
            writer.put("k", {"v": 1})
            observer = DiskCache(tmp_path)
            try:
                result = observer.compact(dry_run=True)  # no lock needed
                assert result.dry_run
                assert result.records == 1
            finally:
                observer.close()
        finally:
            writer.close()


@pytest.mark.smoke
class TestEngineDiskTier:
    """The engine's persistent tier: hit/miss, restarts, invalidation."""

    def test_hit_is_byte_identical_and_skips_encoder(self, trainer, tmp_path):
        engine = AnnotationEngine(trainer, EngineConfig(cache_dir=str(tmp_path)))
        table = trainer.dataset.tables[0]
        cold = engine.annotate(table)
        assert not cold.from_disk
        passes_before = trainer.model.encode_calls
        warm = engine.annotate(table)
        assert warm.from_disk
        assert trainer.model.encode_calls == passes_before  # no forward pass
        assert warm.coltypes == cold.coltypes
        assert warm.type_scores == cold.type_scores  # exact floats
        assert warm.colrels == cold.colrels
        assert warm.annotated.requested_pairs == cold.annotated.requested_pairs
        assert np.array_equal(warm.colemb, cold.colemb)
        assert warm.colemb.dtype == cold.colemb.dtype

    def test_warm_restart_zero_passes(self, trainer, tmp_path):
        tables = trainer.dataset.tables[:6]
        AnnotationEngine(
            trainer, EngineConfig(cache_dir=str(tmp_path))
        ).annotate_batch(tables)
        restarted = AnnotationEngine(trainer, EngineConfig(cache_dir=str(tmp_path)))
        passes_before = trainer.model.encode_calls
        results = restarted.annotate_batch(tables)
        assert trainer.model.encode_calls == passes_before
        assert restarted.stats.disk_hits == len(tables)
        assert all(r.from_disk for r in results)

    def test_partial_hit_batch(self, trainer, tmp_path):
        engine = AnnotationEngine(trainer, EngineConfig(cache_dir=str(tmp_path)))
        tables = trainer.dataset.tables[:4]
        engine.annotate_batch(tables[:2])
        results = engine.annotate_batch(tables)  # 2 hits + 2 misses
        assert [r.from_disk for r in results] == [True, True, False, False]
        assert [r.table.table_id for r in results] == [t.table_id for t in tables]
        # The two misses are now cached too.
        again = engine.annotate_batch(tables)
        assert all(r.from_disk for r in again)

    def test_options_change_misses(self, trainer, tmp_path):
        engine = AnnotationEngine(trainer, EngineConfig(cache_dir=str(tmp_path)))
        table = trainer.dataset.tables[0]
        full = engine.annotate(table)
        trimmed = engine.annotate(table, top_k=2)
        assert not trimmed.from_disk  # different options -> different key
        assert all(len(scores) == 2 for scores in trimmed.type_scores)
        assert len(full.type_scores[0]) == trainer.dataset.num_types
        # Both variants now hit independently.
        assert engine.annotate(table).from_disk
        assert engine.annotate(table, top_k=2).from_disk

    def test_model_change_invalidates(self, dataset, tmp_path):
        trainer_a = _train(dataset)
        engine_a = AnnotationEngine(trainer_a, EngineConfig(cache_dir=str(tmp_path)))
        table = dataset.tables[0]
        engine_a.annotate(table)
        # Same data, differently-seeded weights: must not share entries.
        trainer_b = _train(dataset, seed=123)
        assert trainer_a.annotation_fingerprint() != trainer_b.annotation_fingerprint()
        engine_b = AnnotationEngine(trainer_b, EngineConfig(cache_dir=str(tmp_path)))
        result = engine_b.annotate(table)
        assert not result.from_disk
        assert engine_b.stats.disk_misses == 1

    def test_weight_mutation_changes_fingerprint(self, dataset):
        trainer = _train(dataset)
        before = trainer.model.fingerprint()
        param = trainer.model.parameters()[0]
        param.data = param.data + 1e-3
        assert trainer.model.fingerprint() != before

    def test_fingerprint_stable_across_save_load(self, trainer, tmp_path):
        from repro.core import Doduo, save_annotator
        from repro.core.persistence import load_annotator

        save_annotator(Doduo(trainer), tmp_path / "bundle")
        loaded = load_annotator(tmp_path / "bundle")
        assert (
            loaded.trainer.annotation_fingerprint()
            == trainer.annotation_fingerprint()
        )

    def test_key_ignores_table_id_but_not_content(self, trainer):
        from repro.datasets import Column, Table

        fingerprint = trainer.annotation_fingerprint()
        table_a = Table(columns=[Column(values=["x", "y"], header="h")], table_id="a")
        table_b = Table(columns=[Column(values=["x", "y"], header="h")], table_id="b")
        table_c = Table(columns=[Column(values=["x", "z"], header="h")], table_id="a")
        key = lambda t, **kw: result_cache_key(
            fingerprint, AnnotationRequest(table=t, **kw)
        )
        assert key(table_a) == key(table_b)
        assert key(table_a) != key(table_c)
        assert key(table_a) != key(
            table_a, options=AnnotationOptions(with_embeddings=False)
        )
        assert key(table_a) != key(table_a, pairs=[(0, 0)])

    def test_corrupt_cache_recovers_by_recomputing(self, trainer, tmp_path):
        engine = AnnotationEngine(trainer, EngineConfig(cache_dir=str(tmp_path)))
        table = trainer.dataset.tables[0]
        cold = engine.annotate(table)
        # Corrupt every record on disk, then restart.
        for segment in tmp_path.glob("segment-*.jsonl"):
            segment.write_text("not json at all\n")
        recovered = AnnotationEngine(trainer, EngineConfig(cache_dir=str(tmp_path)))
        assert recovered.result_cache.stats.corrupt_records == 1
        result = recovered.annotate(table)
        assert not result.from_disk  # recomputed, not served stale
        assert result.type_scores == cold.type_scores
        assert recovered.annotate(table).from_disk  # and re-cached

    def test_payloads_are_json(self, trainer, tmp_path):
        """The on-disk format is inspectable JSONL, one record per line."""
        engine = AnnotationEngine(trainer, EngineConfig(cache_dir=str(tmp_path)))
        engine.annotate(trainer.dataset.tables[0])
        (segment,) = tmp_path.glob("segment-*.jsonl")
        record = json.loads(segment.read_text().splitlines()[0])
        assert set(record) == {"key", "payload"}
        assert {"coltypes", "type_scores", "colrels"} <= set(record["payload"])
