"""The unified encoding layer: pipeline cache, exact batch planning, padding.

The load-bearing guarantees:

* :class:`~repro.encoding.BatchPlanner` composes exact width buckets —
  identical signatures share a batch, everything else never does — and its
  :class:`~repro.encoding.PaddingReport` arithmetic is correct;
* the :class:`~repro.encoding.EncodingPipeline` cache is shared across
  training, evaluation, and serving (one serialization per content);
* serializer edge cases (empty columns, single-column tables, unicode-heavy
  cells, tables wider than the sequence budget) flow through the pipeline
  with **byte-identical** batched vs sequential annotation in both
  table-wise and single-column modes;
* ``pad_batch``/``pad_token_lists`` honor explicit width/dtype.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Doduo, DoduoConfig, DoduoTrainer
from repro.datasets import Column, Table, generate_wikitable_dataset
from repro.encoding import (
    BatchPlanner,
    EncodingPipeline,
    PaddingReport,
    pad_batch,
    pad_token_lists,
    width_signature,
)
from repro.nn import TransformerConfig
from repro.serving import AnnotationEngine, EngineConfig
from repro.text import train_wordpiece


@pytest.fixture(scope="module")
def dataset():
    return generate_wikitable_dataset(num_tables=20, seed=11, max_rows=4)


def _train(dataset, **overrides) -> DoduoTrainer:
    tokenizer = train_wordpiece(dataset.all_cell_text(), vocab_size=600)
    config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        hidden_dim=32,
        num_layers=2,
        num_heads=2,
        ffn_dim=64,
        max_position=160,
        num_segments=8,
        dropout=0.0,
    )
    trainer = DoduoTrainer(
        dataset,
        tokenizer,
        config,
        DoduoConfig(epochs=1, batch_size=8, keep_best_checkpoint=False,
                    **overrides),
    )
    trainer.train()
    return trainer


@pytest.fixture(scope="module")
def trainer(dataset):
    return _train(dataset)


@pytest.fixture(scope="module")
def single_column_trainer(dataset):
    return _train(dataset, single_column=True)


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------

class TestBatchPlanner:
    def test_exact_buckets_are_homogeneous(self):
        signatures = [(10,), (12,), (10,), (7,), (12,), (10,)]
        planner = BatchPlanner(batch_size=8)
        batches = planner.plan(signatures)
        seen = []
        for batch in batches:
            keys = {signatures[i] for i in batch}
            assert len(keys) == 1  # never mixes widths
            seen.extend(batch)
        assert sorted(seen) == list(range(len(signatures)))
        # ordered=True emits buckets by ascending signature
        widths = [signatures[batch[0]][0] for batch in batches]
        assert widths == sorted(widths)

    def test_batch_size_caps_buckets(self):
        planner = BatchPlanner(batch_size=2)
        batches = planner.plan([(5,)] * 7)
        assert [len(b) for b in batches] == [2, 2, 2, 1]

    def test_first_seen_order(self):
        planner = BatchPlanner(batch_size=8, ordered=False)
        batches = planner.plan([(9,), (3,), (9,)])
        assert batches == [[0, 2], [1]]

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            BatchPlanner(batch_size=0)

    def test_exact_plan_has_zero_waste(self):
        lengths = [10, 12, 10, 7, 12, 10]
        planner = BatchPlanner(batch_size=4)
        exact = planner.plan([(length,) for length in lengths])
        report = BatchPlanner.report(lengths, exact)
        assert report.wasted_tokens == 0
        assert report.waste_ratio == 0.0
        assert report.real_tokens == sum(lengths)
        assert report.sequences == len(lengths)

    def test_padded_plan_reports_waste(self):
        lengths = [4, 16]
        planner = BatchPlanner(batch_size=2)
        padded = planner.plan_padded(lengths)
        report = BatchPlanner.report(lengths, padded)
        assert report.padded_tokens == 32  # both rows padded to 16
        assert report.wasted_tokens == 12
        assert report.waste_ratio == pytest.approx(12 / 32)

    def test_report_addition(self):
        a = PaddingReport(sequences=1, batches=1, real_tokens=5, padded_tokens=8)
        b = PaddingReport(sequences=2, batches=1, real_tokens=6, padded_tokens=6)
        total = a + b
        assert total.sequences == 3
        assert total.padded_tokens == 14
        assert total.wasted_tokens == 3

    def test_width_signature(self):
        assert width_signature([3, 9, 5]) == (9,)
        assert width_signature([]) == (0,)

    def test_zero_waste_budget_is_byte_identical_exact_plan(self):
        signatures = [(10,), (12,), (10,), (7,), (12,), (10,)]
        exact = BatchPlanner(batch_size=4).plan(signatures)
        defaulted = BatchPlanner(batch_size=4, waste_budget=0).plan(signatures)
        assert exact == defaulted  # default 0 keeps the exact contract

    def test_waste_budget_merges_adjacent_buckets(self):
        lengths = [10, 12, 10, 7, 12, 10]
        signatures = [(length,) for length in lengths]
        # Greedy from the narrow end: the 7 joins the three 10s (3 padded
        # slots); pulling the 12s in as well would cost 5 + 3*2 = 11 > 8,
        # so they stay their own batch.
        planner = BatchPlanner(batch_size=8, waste_budget=8)
        batches = planner.plan(signatures)
        merged = {tuple(sorted(batch)) for batch in batches}
        assert merged == {(0, 2, 3, 5), (1, 4)}
        report = BatchPlanner.report(lengths, batches)
        assert report.wasted_tokens == 3  # within budget, not zero
        assert planner.mode == "packed(waste_budget=8)"
        assert BatchPlanner(batch_size=8).mode == "exact"

    def test_waste_budget_respects_batch_size(self):
        planner = BatchPlanner(batch_size=2, waste_budget=100)
        batches = planner.plan([(5,), (6,), (7,)])
        assert all(len(batch) <= 2 for batch in batches)
        assert sorted(i for batch in batches for i in batch) == [0, 1, 2]

    def test_waste_budget_handles_multi_component_signatures(self):
        # Engine signatures are (column_width, pair_width): both components
        # count toward the budget.
        signatures = [(10, 4), (12, 8)]
        assert len(BatchPlanner(batch_size=8, waste_budget=6).plan(signatures)) == 1
        assert len(BatchPlanner(batch_size=8, waste_budget=5).plan(signatures)) == 2

    def test_negative_waste_budget_rejected(self):
        with pytest.raises(ValueError, match="waste_budget"):
            BatchPlanner(waste_budget=-1)


# ---------------------------------------------------------------------------
# Pipeline cache
# ---------------------------------------------------------------------------

class TestEncodingPipeline:
    def test_one_serialization_per_content(self, trainer):
        pipeline = EncodingPipeline(trainer.serializer)
        table = trainer.dataset.tables[0]
        first = pipeline.encode_table(table)
        again = pipeline.encode_table(table)
        assert again is first  # the cached artifact itself
        twin = Table(columns=table.columns, table_id="other-id")
        assert pipeline.encode_table(twin) is first  # content-keyed
        assert pipeline.stats.serializations == 1
        assert pipeline.stats.hits == 2

    def test_kinds_do_not_collide(self, trainer):
        pipeline = EncodingPipeline(trainer.serializer)
        table = trainer.dataset.tables[0]
        whole = pipeline.encode_table(table)
        columns = pipeline.encode_columns(table)
        assert isinstance(columns, list)
        assert whole.length != 0 and len(columns) == table.num_columns
        pair = pipeline.encode_pair(table, 0, 1)
        # pair sequences cost len_i + len_j tokens (doc'd invariant the
        # planner's signature arithmetic relies on)
        assert pair.length == columns[0].length + columns[1].length

    def test_encode_cached_reports_hits(self, trainer):
        pipeline = EncodingPipeline(trainer.serializer)
        table = trainer.dataset.tables[0]
        _, hit = pipeline.encode_cached(table)
        assert not hit
        _, hit = pipeline.encode_cached(table)
        assert hit
        pipeline.clear_cache()
        _, hit = pipeline.encode_cached(table)
        assert not hit

    def test_cache_disabled(self, trainer):
        pipeline = EncodingPipeline(trainer.serializer, cache_size=0)
        table = trainer.dataset.tables[0]
        a = pipeline.encode_table(table)
        b = pipeline.encode_table(table)
        assert a is not b
        assert pipeline.stats.serializations == 2
        assert pipeline.cache_size == 0

    def test_trainer_and_engine_share_cache(self, trainer):
        """The tentpole property: evaluation warms serving and vice versa."""
        trainer.encoding.clear_cache()
        trainer.evaluate(trainer.dataset)  # serializes every table
        engine = AnnotationEngine(trainer)  # default: shared pipeline
        result = engine.annotate(trainer.dataset.tables[0])
        assert result.from_cache  # no re-serialization after evaluate
        assert engine.stats.cache_misses == 0

    def test_annotation_signature_modes(self, trainer):
        table = trainer.dataset.tables[0]
        pipeline = EncodingPipeline(trainer.serializer)
        whole = pipeline.encode_table(table)
        assert pipeline.annotation_signature(whole) == (whole.length, 0)
        columns = pipeline.encode_columns(table)
        signature = pipeline.annotation_signature(columns, [(0, 1)])
        assert signature == (
            max(e.length for e in columns),
            columns[0].length + columns[1].length,
        )


# ---------------------------------------------------------------------------
# Shared padding implementation
# ---------------------------------------------------------------------------

class TestPadding:
    def test_explicit_width(self):
        ids, mask = pad_token_lists([[1, 2], [3]], pad_id=0, width=5)
        assert ids.shape == (2, 5)
        assert ids[0].tolist() == [1, 2, 0, 0, 0]
        assert mask.sum() == 3

    def test_width_too_small_rejected(self):
        with pytest.raises(ValueError, match="width"):
            pad_token_lists([[1, 2, 3]], pad_id=0, width=2)

    def test_dtype(self):
        ids, _ = pad_token_lists([[1]], pad_id=0, dtype=np.int32)
        assert ids.dtype == np.int32

    def test_pad_batch_delegates(self, trainer):
        encoded = [
            trainer.encoding.encode_table(t) for t in trainer.dataset.tables[:3]
        ]
        ids, mask = pad_batch(encoded, pad_id=0)
        wide_ids, wide_mask = pad_batch(encoded, pad_id=0, width=ids.shape[1] + 4)
        assert wide_ids.shape[1] == ids.shape[1] + 4
        np.testing.assert_array_equal(wide_ids[:, : ids.shape[1]], ids)
        assert wide_mask.sum() == mask.sum()


# ---------------------------------------------------------------------------
# Serializer edge cases through the pipeline (byte-identity each way)
# ---------------------------------------------------------------------------

def _edge_tables():
    return [
        Table(  # empty column alongside a populated one
            columns=[
                Column(values=[], header="empty"),
                Column(values=["alpha", "beta"], header="full"),
            ],
            table_id="edge-empty-column",
        ),
        Table(  # single-column table
            columns=[Column(values=["solo", "values", "only"], header="one")],
            table_id="edge-single-column",
        ),
        Table(  # unicode-heavy cells: CJK, emoji, combining marks, RTL
            columns=[
                Column(values=["渋谷区", "新宿区"], header="区"),
                Column(values=["🚀🌑", "✨"], header="émoji"),
                Column(values=["עִבְרִית", "ελληνικά"], header="ẖéader"),
            ],
            table_id="edge-unicode",
        ),
    ]


def _assert_byte_identical(result, reference):
    assert result.coltypes == reference.coltypes
    assert result.type_scores == reference.type_scores
    assert result.colrels == reference.colrels
    if reference.colemb is None:
        assert result.colemb is None
    else:
        assert np.array_equal(result.colemb, reference.colemb)


@pytest.mark.smoke
class TestSerializerEdgeCases:
    @pytest.mark.parametrize("mode", ["table_wise", "single_column"])
    def test_edge_tables_batched_vs_sequential(self, mode, request):
        fixture = "trainer" if mode == "table_wise" else "single_column_trainer"
        trainer = request.getfixturevalue(fixture)
        tables = _edge_tables() + trainer.dataset.tables[:4]
        engine = AnnotationEngine(trainer, EngineConfig(batch_size=4))
        batched = engine.annotate_batch(tables)
        assert [r.table.table_id for r in batched] == [t.table_id for t in tables]
        for table, result in zip(tables, batched):
            sequential = AnnotationEngine(trainer).annotate(table)
            _assert_byte_identical(result, sequential)

    def test_empty_column_encodes(self, trainer):
        table = _edge_tables()[0]
        encoded = trainer.encoding.encode_table(table)
        # The empty column still gets its [CLS]; no values follow it.
        assert encoded.num_columns == 2
        assert (encoded.column_ids == 0).sum() == 1  # just the [CLS]

    def test_single_column_table_annotates(self, trainer):
        table = _edge_tables()[1]
        annotated = Doduo(trainer).annotate(table)
        assert len(annotated.coltypes) == 1
        assert annotated.colrels == {}  # nothing to relate

    def test_unicode_cache_roundtrip(self, trainer):
        table = _edge_tables()[2]
        pipeline = EncodingPipeline(trainer.serializer)
        first = pipeline.encode_table(table)
        assert pipeline.encode_table(table) is first

    def test_table_wider_than_budget_fails_loudly(self, trainer):
        budget = trainer.serializer.config.max_sequence_length
        max_columns = trainer.serializer.max_columns_within(budget)
        wide = Table(
            columns=[
                Column(values=[f"value-{c}-{r}" for r in range(4)],
                       header=f"column-{c}")
                for c in range(max_columns + 1)
            ],
            table_id="edge-too-wide",
        )
        with pytest.raises(ValueError, match="max_sequence_length"):
            trainer.encoding.encode_table(wide)
        engine = AnnotationEngine(trainer)
        with pytest.raises(ValueError, match="max_sequence_length"):
            engine.annotate(wide)
        # The engine stays serviceable after the failure.
        assert engine.annotate(trainer.dataset.tables[0]).coltypes


# ---------------------------------------------------------------------------
# Trainer integration: exact planning everywhere
# ---------------------------------------------------------------------------

@pytest.mark.smoke
class TestTrainerIntegration:
    def test_predict_types_batched_equals_per_table(self, trainer):
        tables = trainer.dataset.tables[:8]
        batched = trainer.predict_types(tables)
        for table, prediction in zip(tables, batched):
            alone = trainer.predict_types([table])[0]
            np.testing.assert_array_equal(prediction, alone)

    def test_training_history_reports_padding(self, trainer):
        history = trainer.history
        assert history.padded_tokens >= history.real_tokens > 0
        assert 0.0 <= history.padding_waste < 1.0

    def test_engine_padding_waste_zero_for_table_wise(self, trainer):
        engine = AnnotationEngine(trainer, EngineConfig(batch_size=4))
        engine.annotate_batch(trainer.dataset.tables[:8])
        assert engine.stats.padding_waste == 0.0
        assert engine.stats.real_tokens > 0

    def test_single_column_waste_matches_sequential_floor(
        self, single_column_trainer
    ):
        """Single-column buckets may pad short columns to their own table's
        widest — exactly what sequential annotation pads — but batching must
        add nothing on top."""
        trainer = single_column_trainer
        tables = trainer.dataset.tables[:8]
        batched = AnnotationEngine(trainer, EngineConfig(batch_size=4))
        batched.annotate_batch(tables)
        sequential = AnnotationEngine(trainer)
        for table in tables:
            sequential.annotate(table)
        assert batched.stats.real_tokens == sequential.stats.real_tokens
        assert batched.stats.padded_tokens == sequential.stats.padded_tokens

    def test_predict_relations_batched_equals_per_table(self, trainer):
        """The evaluation path's relation predictions are batched on exact
        width boundaries with per-table head groups, so predictions stay
        byte-identical to one-table-at-a-time calls."""
        tables = trainer.dataset.tables[:8]
        batched = trainer.predict_relations(tables)
        for table, prediction in zip(tables, batched):
            alone = trainer.predict_relations([table])[0]
            assert set(prediction) == set(alone)
            for pair in prediction:
                np.testing.assert_array_equal(prediction[pair], alone[pair])

    def test_predict_relations_batched_equals_per_table_single_column(
        self, single_column_trainer
    ):
        tables = single_column_trainer.dataset.tables[:6]
        batched = single_column_trainer.predict_relations(tables)
        for table, prediction in zip(tables, batched):
            alone = single_column_trainer.predict_relations([table])[0]
            assert set(prediction) == set(alone)
            for pair in prediction:
                np.testing.assert_array_equal(prediction[pair], alone[pair])

    def test_predict_relations_shares_encoder_passes(self, trainer):
        """Same-width tables share one relation pass instead of one each:
        the pass count equals the number of exact width buckets among
        tables that have pairs to probe (historically it was one pass per
        such table)."""
        tables = trainer.dataset.tables[:10]
        active = [t for t in tables if sorted(t.relation_labels)]
        buckets = {trainer.encoding.encode_table(t).length for t in active}
        passes_before = trainer.model.encode_calls
        trainer.predict_relations(tables)
        batched_passes = trainer.model.encode_calls - passes_before
        assert batched_passes == len(buckets)
        assert batched_passes <= len(active)

    def test_annotation_fingerprint_memoized_and_invalidated(self, dataset):
        trainer = _train(dataset)
        first = trainer.annotation_fingerprint()
        assert trainer.annotation_fingerprint() is first  # memo: same str
        trainer.invalidate_fingerprint()
        assert trainer.annotation_fingerprint() == first  # weights unchanged
        # A LIVE engine must observe the re-key too: its cache keys and
        # routes delegate to the trainer's memo instead of freezing the
        # fingerprint at engine construction.
        engine = AnnotationEngine(trainer)
        assert engine.model_fingerprint == first
        trainer.train()  # further fine-tuning re-keys the fingerprint
        assert trainer.annotation_fingerprint() != first
        assert engine.model_fingerprint == trainer.annotation_fingerprint()


# ---------------------------------------------------------------------------
# Engine-level near-width packing (EngineConfig.waste_budget)
# ---------------------------------------------------------------------------

@pytest.mark.smoke
class TestEnginePacking:
    def test_packed_engine_runs_fewer_passes_and_reports_mode(self, trainer):
        tables = trainer.dataset.tables[:12]
        exact = AnnotationEngine(trainer, EngineConfig(batch_size=12))
        exact.annotate_batch(tables)
        assert exact.stats.planner_mode == "exact"
        assert exact.stats.padding_waste == 0.0

        packed = AnnotationEngine(
            trainer, EngineConfig(batch_size=12, waste_budget=64)
        )
        packed.annotate_batch(tables)
        assert packed.stats.planner_mode == "packed(waste_budget=64)"
        assert packed.stats.encoder_passes <= exact.stats.encoder_passes
        # The whole point of the budget: strictly fewer passes on a
        # width-diverse workload (the 12-table wikitable slice is diverse).
        if exact.stats.encoder_passes > 1:
            assert packed.stats.encoder_passes < exact.stats.encoder_passes
            assert packed.stats.padding_waste > 0.0

    def test_packed_predictions_stay_close(self, trainer):
        """Packing surrenders byte-identity (that is the documented trade),
        but predictions must stay numerically equivalent — the pre-PR-3
        jointly-padded tolerance."""
        tables = trainer.dataset.tables[:8]
        exact_results = AnnotationEngine(trainer).annotate_batch(tables)
        packed = AnnotationEngine(
            trainer, EngineConfig(batch_size=8, waste_budget=256)
        )
        for got, want in zip(packed.annotate_batch(tables), exact_results):
            assert got.coltypes == want.coltypes
            assert got.colrels == want.colrels
            np.testing.assert_allclose(got.colemb, want.colemb, atol=1e-5)
            for got_scores, want_scores in zip(got.type_scores, want.type_scores):
                assert got_scores.keys() == want_scores.keys()
                np.testing.assert_allclose(
                    list(got_scores.values()),
                    list(want_scores.values()),
                    atol=1e-5,
                )

    def test_waste_budget_rejected_when_negative(self):
        with pytest.raises(ValueError, match="waste_budget"):
            EngineConfig(waste_budget=-1)
