"""The transport-agnostic serving protocol (repro.serving.protocol).

One decode/encode codepath is shared by corpus serving, the stdin loop,
and the socket server; these tests pin its contract transport-free:
record shapes, error answers (with the historical loop-mode byte shapes),
the ``"id"`` correlation echo, and the admin plane against a live
gateway.
"""

import json

import pytest

from repro.io import table_to_dict
from repro.serving import (
    AnnotationEngine,
    AnnotationGateway,
    AnnotationOptions,
    protocol,
)


def _table_record(table, **extra):
    record = table_to_dict(table)
    record.update(extra)
    return record


def _line(payload) -> str:
    return json.dumps(payload) + "\n"


@pytest.mark.smoke
class TestDecode:
    def test_blank_and_dataset_records_are_skipped(self):
        assert protocol.decode_record("") is None
        assert protocol.decode_record("   \n") is None
        assert protocol.decode_record(_line({"kind": "dataset", "name": "x"})) is None

    def test_table_record_decodes_with_route_and_id(self, shared_tiny_annotator):
        table = shared_tiny_annotator.trainer.dataset.tables[0]
        options = AnnotationOptions(top_k=2)
        record = protocol.decode_record(
            _line(_table_record(table, model="canary", id=41)), options
        )
        assert isinstance(record, protocol.RequestRecord)
        assert record.record_id == 41
        assert record.request.model == "canary"
        assert record.request.options is options
        assert record.request.table.table_id == table.table_id

    def test_bytes_lines_decode_like_str(self, shared_tiny_annotator):
        table = shared_tiny_annotator.trainer.dataset.tables[0]
        record = protocol.decode_record(_line(_table_record(table)).encode("utf-8"))
        assert record.request.table.table_id == table.table_id

    def test_broken_json_raises_protocol_error(self):
        with pytest.raises(protocol.ProtocolError) as info:
            protocol.decode_record("this is not json\n")
        answer = info.value.answer()
        assert set(answer) == {"error"}
        assert "Expecting value" in answer["error"]

    def test_non_table_payload_keeps_legacy_error_shape(self):
        """Pre-protocol loop mode answered non-dict payloads with the raw
        AttributeError text; the shared codepath must keep those bytes."""
        with pytest.raises(protocol.ProtocolError) as info:
            protocol.decode_record("5\n")
        # (The historical rendering strips the outer quote characters the
        # exception text happens to start/end with — bytes over beauty.)
        assert info.value.answer() == {
            "error": "int' object has no attribute 'get"
        }

    def test_zero_column_table_error_carries_id_and_table_id(self):
        with pytest.raises(protocol.ProtocolError) as info:
            protocol.decode_record(
                _line({"kind": "table", "table_id": "t", "columns": [], "id": "c-9"})
            )
        answer = info.value.answer()
        assert "no columns" in answer["error"]
        assert answer["table_id"] == "t"  # salvaged identity
        assert answer["id"] == "c-9"
        # The id echoes as the LAST key of every answer.
        assert list(answer)[-1] == "id"

    def test_pathologically_nested_line_is_an_error_answer(self):
        """'['*N blows json's recursion limit; the server must see a bad
        record, not a RecursionError escaping the protocol layer."""
        with pytest.raises(protocol.ProtocolError, match="nested too deeply"):
            protocol.decode_record("[" * 100000)

    def test_admin_record_requires_admin_transport(self):
        with pytest.raises(protocol.ProtocolError, match="not allowed"):
            protocol.decode_record(_line({"op": "stats"}), admin=False)
        record = protocol.decode_record(_line({"op": "stats"}), admin=True)
        assert isinstance(record, protocol.AdminRecord)
        assert record.op == "stats"

    def test_unknown_admin_op_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="unknown admin op"):
            protocol.decode_record(_line({"op": "reboot", "id": 1}), admin=True)

    def test_admin_payload_and_id_survive_decode(self):
        record = protocol.decode_record(
            _line({"op": "register", "name": "m", "path": "/p", "id": 5}),
            admin=True,
        )
        assert record.payload == {"name": "m", "path": "/p"}
        assert record.record_id == 5


@pytest.mark.smoke
class TestEncode:
    def test_error_answer_key_order(self):
        answer = protocol.error_answer("boom", record_id=3, table_id="t", op="x")
        assert list(answer) == ["table_id", "op", "error", "id"]
        assert protocol.error_answer("boom") == {"error": "boom"}

    def test_format_error_strips_quotes(self):
        assert protocol.format_error(KeyError("no model")) == "no model"
        assert protocol.format_error(ValueError("bad")) == "bad"

    def test_encode_result_id_echo_is_last_key(self, shared_tiny_annotator):
        table = shared_tiny_annotator.trainer.dataset.tables[0]
        engine = AnnotationEngine(shared_tiny_annotator.trainer)
        result = engine.annotate(table)
        bare = protocol.encode_result(result)
        assert "id" not in bare
        tagged = protocol.encode_result(result, record_id={"k": 1})
        assert list(tagged)[-1] == "id"
        assert tagged["id"] == {"k": 1}
        tagged.pop("id")
        assert tagged == bare  # the echo adds a key, never perturbs bytes

    def test_encode_line_is_one_json_line(self):
        line = protocol.encode_line({"a": 1})
        assert line.endswith("\n")
        assert json.loads(line) == {"a": 1}


@pytest.mark.smoke
class TestAdminPlane:
    @pytest.fixture()
    def gateway(self, shared_tiny_annotator):
        gateway = AnnotationGateway.for_engine(
            AnnotationEngine(shared_tiny_annotator.trainer), name="primary"
        )
        with gateway:
            yield gateway

    def _admin(self, gateway, op, **payload):
        record_id = payload.pop("id", None)
        record = protocol.AdminRecord(op=op, payload=payload, record_id=record_id)
        return protocol.handle_admin(record, gateway)

    def test_health(self, gateway):
        answer = self._admin(gateway, "health", id=7)
        assert answer["ok"] is True
        assert answer["models"] == ["primary"]
        assert answer["live"] == ["primary"]
        assert answer["default"] == "primary"
        assert answer["id"] == 7

    def test_stats_is_json_serializable(self, gateway, shared_tiny_annotator):
        gateway.annotate(shared_tiny_annotator.trainer.dataset.tables[0])
        answer = self._admin(gateway, "stats")
        rendered = json.loads(json.dumps(answer))
        assert rendered["gateway"]["completed"] == 1
        assert rendered["gateway"]["models"]["primary"]["completed"] == 1
        assert "padding_waste" in rendered["gateway"]["engines"]["primary"]
        assert rendered["registry"]["registered"] == 1

    def test_register_annotate_unregister(
        self, gateway, shared_tiny_annotator, tmp_path
    ):
        from repro.core import save_annotator

        bundle = tmp_path / "bundle"
        save_annotator(shared_tiny_annotator, bundle)
        assert self._admin(gateway, "register", name="extra", path=str(bundle)) == {
            "ok": True, "op": "register", "name": "extra",
        }
        table = shared_tiny_annotator.trainer.dataset.tables[0]
        routed = gateway.annotate(table, model="extra")
        assert routed.coltypes  # the hot-registered model really serves
        assert self._admin(gateway, "unregister", name="extra")["ok"] is True
        answer = self._admin(gateway, "unregister", name="extra")
        assert "no model registered" in answer["error"]
        assert answer["op"] == "unregister"

    def test_register_requires_name_and_path(self, gateway):
        answer = self._admin(gateway, "register", name="x")
        assert "requires a non-empty 'path'" in answer["error"]
        answer = self._admin(gateway, "register", path="/p", id=9)
        assert "requires a non-empty 'name'" in answer["error"]
        assert answer["id"] == 9  # errors correlate too

    def test_register_bad_path_is_an_answer_not_a_raise(self, gateway, tmp_path):
        answer = self._admin(gateway, "register", name="x", path=str(tmp_path))
        assert "not a bundle directory" in answer["error"]

    def test_shutdown_is_acknowledged_only(self, gateway, shared_tiny_annotator):
        assert self._admin(gateway, "shutdown") == {"ok": True, "op": "shutdown"}
        # The protocol layer acknowledges; the transport performs.  The
        # gateway must still be serving.
        assert gateway.annotate(
            shared_tiny_annotator.trainer.dataset.tables[0]
        ).coltypes


@pytest.mark.smoke
class TestCorpusStrictness:
    def test_admin_record_in_a_corpus_is_an_input_error(self, tmp_path):
        from repro.cli import main

        corpus = tmp_path / "corpus.jsonl"
        corpus.write_text(_line({"op": "stats"}))
        code = main(["serve", str(tmp_path / "missing"), str(corpus)])
        assert code == 1  # no bundle AND strict corpus: clean CLI error
