"""Tests for repro.evaluation.reports and crossval."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import generate_viznet_dataset
from repro.evaluation import (
    PRF,
    classification_report,
    cross_validate,
    f1_by_numeric_fraction,
    kfold,
    most_confused_pairs,
    prf_to_dict,
    render_classification_report,
    render_table,
)
from repro.evaluation.crossval import CrossValResult


NAMES = ["city", "country", "year"]


class TestClassificationReport:
    def test_perfect_predictions(self):
        y = [0, 1, 2, 0, 1, 2]
        report = classification_report(y, y, NAMES)
        assert report.micro.f1 == 1.0
        assert report.macro_f1 == 1.0
        assert all(entry.prf.f1 == 1.0 for entry in report.classes)

    def test_support_counts_true_labels(self):
        report = classification_report([0, 0, 1], [1, 1, 1], NAMES)
        assert report.row("city").support == 2
        assert report.row("country").support == 1
        assert report.row("year").support == 0

    def test_row_unknown_class_raises(self):
        report = classification_report([0], [0], NAMES)
        with pytest.raises(KeyError):
            report.row("nope")

    def test_label_out_of_range_raises(self):
        with pytest.raises(ValueError, match="class_names"):
            classification_report([0, 5], [0, 1], NAMES)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape"):
            classification_report([0, 1], [0], NAMES)

    def test_hardest_and_easiest(self):
        # city always right, country always wrong
        y_true = [0, 0, 1, 1]
        y_pred = [0, 0, 0, 0]
        report = classification_report(y_true, y_pred, NAMES)
        hardest = report.hardest(k=1)
        easiest = report.easiest(k=1)
        assert hardest[0].name == "country"
        assert easiest[0].name == "city"

    def test_hardest_respects_min_support(self):
        report = classification_report([0, 1], [0, 0], NAMES)
        names = [c.name for c in report.hardest(k=3, min_support=1)]
        assert "year" not in names  # zero support


class TestMostConfused:
    def test_orders_by_count(self):
        y_true = [0, 0, 0, 1]
        y_pred = [1, 1, 2, 0]
        pairs = most_confused_pairs(y_true, y_pred, NAMES)
        assert pairs[0] == ("city", "country", 2)
        assert ("city", "year", 1) in pairs
        assert ("country", "city", 1) in pairs

    def test_diagonal_excluded(self):
        pairs = most_confused_pairs([0, 1], [0, 1], NAMES)
        assert pairs == []

    def test_k_truncates(self):
        y_true = [0, 0, 1, 1, 2, 2]
        y_pred = [1, 2, 0, 2, 0, 1]
        assert len(most_confused_pairs(y_true, y_pred, NAMES, k=2)) == 2


class TestRenderers:
    def test_render_table_alignment(self):
        text = render_table(("a", "bb"), [("xxx", "1")], title="T")
        lines = text.splitlines()
        assert lines[0] == "=== T ==="
        assert lines[1].startswith("a  ")
        assert "xxx" in lines[3]

    def test_render_table_ragged_row_raises(self):
        with pytest.raises(ValueError, match="headers"):
            render_table(("a", "b"), [("only-one",)])

    def test_render_classification_report_contains_summary(self):
        report = classification_report([0, 1, 2], [0, 1, 1], NAMES)
        text = render_classification_report(report)
        assert "micro avg" in text
        assert "macro F1" in text
        assert "city" in text

    def test_render_sort_by_f1(self):
        report = classification_report([0, 1], [0, 0], NAMES)
        text = render_classification_report(report, sort_by="f1", min_support=1)
        city_pos = text.index("city")
        country_pos = text.index("country")
        assert city_pos < country_pos  # f1 descending

    def test_render_invalid_sort_raises(self):
        report = classification_report([0], [0], NAMES)
        with pytest.raises(ValueError, match="sort_by"):
            render_classification_report(report, sort_by="support!")

    def test_f1_by_numeric_fraction_orders_by_percentage(self):
        rows = f1_by_numeric_fraction(
            {"year": 0.9, "city": 0.8},
            {"year": 0.95, "city": 0.01, "rank": 0.99},
            top_k=2,
        )
        assert [r[0] for r in rows] == ["rank", "year"]
        assert rows[0][2] == 0.0  # rank has no measured F1


class TestKFold:
    def test_folds_partition_tables(self):
        dataset = generate_viznet_dataset(num_tables=25, seed=0)
        folds = kfold(dataset, k=5, seed=3)
        test_ids = [t.table_id for f in folds for t in f.splits.test.tables]
        assert sorted(test_ids) == sorted(t.table_id for t in dataset.tables)

    def test_no_overlap_between_train_and_test(self):
        dataset = generate_viznet_dataset(num_tables=20, seed=1)
        for fold in kfold(dataset, k=4, seed=0):
            train_ids = {t.table_id for t in fold.splits.train.tables}
            valid_ids = {t.table_id for t in fold.splits.valid.tables}
            test_ids = {t.table_id for t in fold.splits.test.tables}
            assert not train_ids & test_ids
            assert not valid_ids & test_ids
            assert not train_ids & valid_ids

    def test_deterministic(self):
        dataset = generate_viznet_dataset(num_tables=15, seed=2)
        a = kfold(dataset, k=3, seed=7)
        b = kfold(dataset, k=3, seed=7)
        for fa, fb in zip(a, b):
            assert [t.table_id for t in fa.splits.test.tables] == [
                t.table_id for t in fb.splits.test.tables
            ]

    def test_k_too_small_raises(self):
        dataset = generate_viznet_dataset(num_tables=10, seed=0)
        with pytest.raises(ValueError, match="k must be"):
            kfold(dataset, k=1)

    def test_too_few_tables_raises(self):
        dataset = generate_viznet_dataset(num_tables=3, seed=0)
        with pytest.raises(ValueError, match="fewer than"):
            kfold(dataset, k=5)

    @given(n=st.integers(6, 40), k=st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_fold_sizes_balanced(self, n, k):
        if n < k:
            return
        dataset = generate_viznet_dataset(num_tables=n, seed=0)
        folds = kfold(dataset, k=k, seed=0)
        sizes = [len(f.splits.test.tables) for f in folds]
        assert max(sizes) - min(sizes) <= 1


class TestCrossValidate:
    def test_aggregates_means_and_stds(self):
        dataset = generate_viznet_dataset(num_tables=12, seed=4)
        result = cross_validate(
            dataset,
            lambda fold: {"metric": float(fold.index)},
            k=3,
            seed=0,
        )
        assert result.mean("metric") == pytest.approx(1.0)
        assert result.std("metric") == pytest.approx(np.std([0.0, 1.0, 2.0]))
        assert result.metrics() == ["metric"]

    def test_summary_format(self):
        result = CrossValResult(fold_scores=[{"f1": 0.5}, {"f1": 0.7}])
        summary = result.summary()
        assert summary["f1"].startswith("0.6000")
        assert "±" in summary["f1"]

    def test_inconsistent_metrics_raise(self):
        dataset = generate_viznet_dataset(num_tables=12, seed=4)

        def flaky(fold):
            return {"a": 1.0} if fold.index == 0 else {"b": 1.0}

        with pytest.raises(ValueError, match="returned metrics"):
            cross_validate(dataset, flaky, k=3)

    def test_prf_to_dict(self):
        flat = prf_to_dict("type", PRF(0.1, 0.2, 0.3))
        assert flat == {
            "type_precision": 0.1,
            "type_recall": 0.2,
            "type_f1": 0.3,
        }
