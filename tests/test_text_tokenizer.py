"""Tests for WordPiece tokenization, including property-based round trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import (
    CLS_TOKEN,
    MASK_TOKEN,
    PAD_TOKEN,
    SEP_TOKEN,
    SPECIAL_TOKENS,
    UNK_TOKEN,
    Vocabulary,
    WordPieceTokenizer,
    basic_tokenize,
    build_tokenizer_from_words,
    train_wordpiece,
)


class TestBasicTokenize:
    def test_lowercases_and_splits(self):
        assert basic_tokenize("Happy Feet") == ["happy", "feet"]

    def test_punctuation_separated(self):
        assert basic_tokenize("a,b") == ["a", ",", "b"]

    def test_digit_pair_splitting(self):
        assert basic_tokenize("2925341") == ["29", "25", "34", "1"]
        assert basic_tokenize("87") == ["87"]
        assert basic_tokenize("5") == ["5"]

    def test_mixed_alphanumeric_not_split(self):
        assert basic_tokenize("abc123x") == ["abc123x"]

    def test_empty(self):
        assert basic_tokenize("") == []


class TestVocabulary:
    def test_specials_first(self):
        vocab = Vocabulary(["hello"])
        assert vocab.pad_id == 0
        assert vocab.id_to_token(0) == PAD_TOKEN
        for token in SPECIAL_TOKENS:
            assert token in vocab

    def test_unknown_maps_to_unk(self):
        vocab = Vocabulary(["hello"])
        assert vocab.token_to_id("zzz") == vocab.unk_id

    def test_roundtrip(self):
        vocab = Vocabulary(["hello", "world"])
        for token in ["hello", "world", CLS_TOKEN, SEP_TOKEN, MASK_TOKEN]:
            assert vocab.id_to_token(vocab.token_to_id(token)) == token

    def test_duplicates_deduped(self):
        vocab = Vocabulary(["a", "a", "b"])
        assert len(vocab) == len(SPECIAL_TOKENS) + 2

    def test_bad_id_raises(self):
        vocab = Vocabulary(["a"])
        with pytest.raises(KeyError):
            vocab.id_to_token(9999)

    def test_tokens_ordered_by_id(self):
        vocab = Vocabulary(["x", "y"])
        tokens = vocab.tokens()
        assert tokens[vocab.token_to_id("x")] == "x"


class TestWordPiece:
    @pytest.fixture
    def tokenizer(self):
        return build_tokenizer_from_words(["happy", "feet", "george", "miller"])

    def test_whole_word(self, tokenizer):
        assert tokenizer.tokenize_word("happy") == ["happy"]

    def test_char_fallback(self, tokenizer):
        pieces = tokenizer.tokenize_word("hap")
        assert pieces[0] == "h"
        assert all(p.startswith("##") for p in pieces[1:])

    def test_unknown_chars_map_to_unk(self):
        tokenizer = build_tokenizer_from_words(["abc"])
        assert tokenizer.tokenize_word("xyz") == [UNK_TOKEN]

    def test_long_word_is_unk(self, tokenizer):
        assert tokenizer.tokenize_word("a" * 100) == [UNK_TOKEN]

    def test_encode_decode_roundtrip(self, tokenizer):
        text = "happy feet george miller"
        assert tokenizer.decode(tokenizer.encode(text)) == text

    def test_decode_skips_specials(self, tokenizer):
        vocab = tokenizer.vocab
        ids = [vocab.cls_id] + tokenizer.encode("happy") + [vocab.sep_id]
        assert tokenizer.decode(ids) == "happy"

    def test_greedy_longest_match(self):
        vocab = Vocabulary(["ab", "a", "b", "##b", "##c", "c"])
        tokenizer = WordPieceTokenizer(vocab)
        assert tokenizer.tokenize_word("abc") == ["ab", "##c"]


class TestTrainer:
    def test_trained_tokenizer_covers_corpus(self):
        corpus = ["the happy dog runs", "the sad dog sleeps", "dogs run happily"] * 5
        tokenizer = train_wordpiece(corpus, vocab_size=500)
        for sentence in corpus:
            ids = tokenizer.encode(sentence)
            assert tokenizer.vocab.unk_id not in ids

    def test_frequent_words_kept_whole(self):
        corpus = ["zebra stripes"] * 20
        tokenizer = train_wordpiece(corpus, vocab_size=500)
        assert tokenizer.tokenize_word("zebra") == ["zebra"]

    def test_vocab_size_respected(self):
        corpus = [f"word{i} text" for i in range(100)]
        tokenizer = train_wordpiece(corpus, vocab_size=300)
        assert tokenizer.vocab_size <= 300

    def test_digit_pairs_always_in_vocab(self):
        tokenizer = train_wordpiece(["hello world"], vocab_size=600)
        for pair in ("00", "42", "99"):
            assert pair in tokenizer.vocab

    def test_unseen_words_segmentable_via_chars(self):
        corpus = ["alpha beta gamma"] * 3
        tokenizer = train_wordpiece(corpus, vocab_size=500)
        pieces = tokenizer.tokenize_word("gab")  # chars all seen
        assert UNK_TOKEN not in pieces


@settings(max_examples=50, deadline=None)
@given(st.text(alphabet="abcdefghij0123456789 ", min_size=0, max_size=40))
def test_property_encode_always_valid_ids(text):
    tokenizer = train_wordpiece(
        ["abcdefghij 0123456789 aa bb cc"], vocab_size=600
    )
    ids = tokenizer.encode(text)
    assert all(0 <= i < tokenizer.vocab_size for i in ids)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.sampled_from(["happy", "feet", "cars", "away", "usa"]), min_size=1, max_size=8))
def test_property_roundtrip_on_vocab_words(words):
    tokenizer = build_tokenizer_from_words(["happy", "feet", "cars", "away", "usa"])
    text = " ".join(words)
    assert tokenizer.decode(tokenizer.encode(text)) == text


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10 ** 12))
def test_property_digit_split_reassembles(number):
    pieces = basic_tokenize(str(number))
    assert "".join(pieces) == str(number)
