"""The cross-process cache fabric (repro.serving.fabric).

The load-bearing guarantees:

* **concurrent writers never corrupt**: two real processes appending to
  one directory — including writing the *same* key — leave every record
  readable, zero corrupt lines, and compaction leaves exactly one valid
  entry per key;
* **cross-writer reads**: an entry flushed by writer A is a (remote)
  hit for writer B without re-encoding, after at most one refresh;
* **lock-aware compaction**: a live writer's segments are skipped, not
  merged; a second concurrent compactor is refused (``CacheLockedError``);
  ``dry_run=True`` reports reclaimable bytes and mutates nothing;
* **legacy interop**: a directory of plain single-writer ``DiskCache``
  segments reads and compacts through the fabric — warm caches survive
  a scale-out;
* readers recover when a compaction deletes segment files out from
  under their in-memory index.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.serving import CacheLockedError, DiskCache, FileLock
from repro.serving.fabric import (
    FabricCache,
    INDEX_NAME,
    LEGACY_WRITER,
    is_fabric_directory,
    split_segment_name,
    writer_lock_path,
)


def _payload(tag, i):
    return {"tag": tag, "i": i, "text": f"payload-{tag}-{i}" * 3}


class TestFabricBasics:
    def test_put_get_roundtrip_and_hot_hits(self, tmp_path):
        with FabricCache(tmp_path, writer="w0") as cache:
            for i in range(5):
                cache.put(f"k{i}", _payload("a", i))
            assert len(cache) == 5
            for i in range(5):
                assert cache.get(f"k{i}") == _payload("a", i)
            assert cache.stats.writes == 5
            assert cache.stats.hits == 5
            assert cache.stats.misses == 0
            assert cache.get("absent") is None
            assert cache.stats.misses == 1

    def test_first_write_wins(self, tmp_path):
        with FabricCache(tmp_path, writer="w0") as cache:
            cache.put("k", {"v": 1})
            cache.put("k", {"v": 2})  # ignored: entries are immutable
            assert cache.get("k") == {"v": 1}
            assert cache.stats.writes == 1

    def test_segment_rotation_names_carry_writer(self, tmp_path):
        with FabricCache(tmp_path, writer="w7", max_segment_records=3) as cache:
            for i in range(8):
                cache.put(f"k{i}", _payload("r", i))
        segments = sorted(tmp_path.glob("segment-*.jsonl"))
        assert len(segments) == 3  # 3 + 3 + 2
        for path in segments:
            writer, _number = split_segment_name(path)
            assert writer == "w7"

    def test_is_fabric_directory(self, tmp_path):
        assert not is_fabric_directory(tmp_path)
        with FabricCache(tmp_path / "fab", writer="w0") as cache:
            cache.put("k", {"v": 1})
        assert is_fabric_directory(tmp_path / "fab")
        with DiskCache(tmp_path / "flat") as cache:
            cache.put("k", {"v": 1})
        # A plain single-writer DiskCache directory is NOT fabric...
        assert not is_fabric_directory(tmp_path / "flat")
        # ...until a fabric writer (or compaction) has touched it.
        with FabricCache(tmp_path / "flat", writer="w0") as cache:
            cache.compact()
        assert is_fabric_directory(tmp_path / "flat")


@pytest.mark.smoke
class TestCrossWriterReads:
    def test_sibling_entry_is_a_remote_hit(self, tmp_path):
        a = FabricCache(tmp_path, writer="wa", refresh_interval=0.0)
        b = FabricCache(tmp_path, writer="wb", refresh_interval=0.0)
        try:
            a.put("shared", _payload("a", 0))
            # b never wrote this key: the miss triggers a refresh that
            # tails a's segment, then the retry hits.
            assert b.get("shared") == _payload("a", 0)
            assert b.stats.remote_hits == 1
            assert b.stats.misses == 0
            assert b.stats.corrupt_records == 0
        finally:
            a.close()
            b.close()

    def test_reads_see_only_complete_lines(self, tmp_path):
        a = FabricCache(tmp_path, writer="wa", refresh_interval=0.0)
        b = FabricCache(tmp_path, writer="wb", refresh_interval=0.0)
        try:
            a.put("k0", _payload("a", 0))
            assert b.get("k0") is not None
            # Simulate a writer mid-append: a torn (unterminated) tail
            # line must be invisible, not corrupt.
            segment = next(tmp_path.glob("segment-wa-*.jsonl"))
            with open(segment, "ab") as handle:
                handle.write(b'{"key": "torn", "payload": {"v"')
            assert b.get("torn") is None
            assert b.stats.corrupt_records == 0
            # The writer finishing the line makes it readable.
            with open(segment, "ab") as handle:
                handle.write(b': 1}}\n')
            assert b.get("torn") == {"v": 1}
        finally:
            a.close()
            b.close()

    def test_compacted_generation_readable_by_late_joiner(self, tmp_path):
        with FabricCache(tmp_path, writer="wa") as a:
            for i in range(10):
                a.put(f"k{i}", _payload("a", i))
            a.compact()
        assert (tmp_path / INDEX_NAME).exists()
        with FabricCache(tmp_path, writer="wb") as b:
            for i in range(10):
                assert b.get(f"k{i}") == _payload("a", i)

    def test_reader_recovers_from_concurrent_compaction(self, tmp_path):
        a = FabricCache(tmp_path, writer="wa", refresh_interval=0.0)
        b = FabricCache(tmp_path, writer="wb", refresh_interval=0.0)
        try:
            a.put("k", _payload("a", 0))
            assert b.get("k") is not None  # b's index points at a's segment
            a.close()  # quiescent: compaction may merge a's segments
            with FabricCache(tmp_path, writer="wc") as c:
                c.compact()
            # a's segment file is gone; b recovers via a forced refresh
            # onto the compacted generation.
            assert b.get("k") == _payload("a", 0)
        finally:
            b.close()


def _fabric_writer_process(directory, writer, count, barrier):
    cache = FabricCache(directory, writer=writer, max_segment_records=16)
    try:
        barrier.wait(timeout=30)  # maximize interleaving
        for i in range(count):
            cache.put(f"{writer}-k{i}", _payload(writer, i))
        cache.put("shared", {"winner": "first-write-wins"})
    finally:
        cache.close()


@pytest.mark.smoke
class TestConcurrentProcesses:
    def test_two_process_writers_never_corrupt(self, tmp_path):
        """Satellite acceptance: two real processes, same directory, one
        deliberately duplicated key — every record readable, zero
        corrupt, and exactly one valid entry for the duplicate after
        compaction."""
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        barrier = ctx.Barrier(2)
        workers = [
            ctx.Process(
                target=_fabric_writer_process,
                args=(str(tmp_path), writer, 50, barrier),
            )
            for writer in ("wa", "wb")
        ]
        for process in workers:
            process.start()
        for process in workers:
            process.join(timeout=60)
            assert process.exitcode == 0
        with FabricCache(tmp_path, writer="reader") as reader:
            for writer in ("wa", "wb"):
                for i in range(50):
                    assert reader.get(f"{writer}-k{i}") == _payload(writer, i)
            assert reader.get("shared") == {"winner": "first-write-wins"}
            assert reader.stats.corrupt_records == 0
            result = reader.compact()
        assert result.records == 101  # 2 x 50 + exactly ONE "shared"
        assert result.skipped_segments == 0
        # The compacted file holds the key exactly once.
        compacted = next(tmp_path.glob("compact-*.jsonl"))
        with open(compacted, "r", encoding="utf-8") as handle:
            keys = [json.loads(line)["key"] for line in handle]
        assert keys.count("shared") == 1
        assert len(keys) == len(set(keys)) == 101
        # And everything is still readable post-compaction.
        with FabricCache(tmp_path, writer="reader2") as reader:
            assert reader.get("wa-k0") == _payload("wa", 0)
            assert reader.get("shared") == {"winner": "first-write-wins"}


@pytest.mark.smoke
class TestLockAwareCompaction:
    def test_live_writer_segments_are_skipped(self, tmp_path):
        live = FabricCache(tmp_path, writer="live")
        try:
            live.put("live-k", _payload("live", 0))
            with FabricCache(tmp_path, writer="done") as done:
                done.put("done-k", _payload("done", 0))
            with FabricCache(tmp_path, writer="compactor") as compactor:
                result = compactor.compact()
            # The quiescent writer's segment merged; the live writer's
            # survived untouched and stayed readable.
            assert result.skipped_segments == 1
            assert any(
                split_segment_name(p) == ("live", 0)
                for p in tmp_path.glob("segment-*.jsonl")
            )
            with FabricCache(tmp_path, writer="reader") as reader:
                assert reader.get("live-k") == _payload("live", 0)
                assert reader.get("done-k") == _payload("done", 0)
        finally:
            live.close()

    def test_concurrent_compactors_mutually_exclude(self, tmp_path):
        with FabricCache(tmp_path, writer="wa") as a:
            a.put("k", {"v": 1})
        # Hold the compaction lock the way a concurrent compactor would.
        with FileLock(tmp_path / "compact.lock") as held:
            assert held.held
            with FabricCache(tmp_path, writer="wb") as b:
                with pytest.raises(CacheLockedError):
                    b.compact()

    def test_dry_run_reports_without_mutating(self, tmp_path):
        with FabricCache(tmp_path, writer="wa") as a:
            for i in range(10):
                a.put(f"k{i}", _payload("a", i))
        with FabricCache(tmp_path, writer="wb") as cache:
            before = sorted(
                (p.name, p.stat().st_size)
                for p in tmp_path.iterdir()
                if p.suffix == ".jsonl"
            )
            dry = cache.compact(dry_run=True)
            after = sorted(
                (p.name, p.stat().st_size)
                for p in tmp_path.iterdir()
                if p.suffix == ".jsonl"
            )
            assert dry.dry_run
            assert before == after  # nothing rewritten, nothing deleted
            assert not (tmp_path / INDEX_NAME).exists()
            real = cache.compact()
        # The dry run's projection matches the real outcome byte-for-byte.
        assert not real.dry_run
        assert dry.records == real.records == 10
        assert dry.bytes_after == real.bytes_after
        assert dry.reclaimed_bytes == real.reclaimed_bytes

    def test_writer_lock_released_on_close(self, tmp_path):
        cache = FabricCache(tmp_path, writer="wa")
        cache.put("k", {"v": 1})
        lock_path = writer_lock_path(tmp_path, "wa")
        assert FileLock.is_locked(lock_path)
        cache.close()
        assert not FileLock.is_locked(lock_path)


class TestLegacyInterop:
    def test_diskcache_segments_read_through_fabric(self, tmp_path):
        with DiskCache(tmp_path) as legacy:
            for i in range(5):
                legacy.put(f"k{i}", _payload("legacy", i))
        with FabricCache(tmp_path, writer="w0") as fabric:
            for i in range(5):
                assert fabric.get(f"k{i}") == _payload("legacy", i)
            assert fabric.stats.corrupt_records == 0
            # Legacy segments parse as the anonymous legacy writer.
            assert any(
                split_segment_name(p)[0] == LEGACY_WRITER
                for p in tmp_path.glob("segment-*.jsonl")
            )
            result = fabric.compact()
        assert result.records == 5
        # Legacy segment files merged into the compacted generation.
        assert not any(
            split_segment_name(p)[0] == LEGACY_WRITER
            for p in tmp_path.glob("segment-*.jsonl")
        )
        with FabricCache(tmp_path, writer="w1") as fabric:
            assert fabric.get("k0") == _payload("legacy", 0)

    def test_live_legacy_writer_is_skipped(self, tmp_path):
        legacy = DiskCache(tmp_path)
        try:
            legacy.put("k", _payload("legacy", 0))
            assert legacy.holds_writer_lock
            with FabricCache(tmp_path, writer="w0") as fabric:
                result = fabric.compact()
            assert result.skipped_segments == 1
            assert legacy.get("k") == _payload("legacy", 0)
        finally:
            legacy.close()
