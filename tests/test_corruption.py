"""Tests for dirty-data injection (repro.datasets.corruption)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    Column,
    CorruptionConfig,
    Table,
    corrupt_dataset,
    corrupt_table,
    drop_cells,
    generate_viznet_dataset,
    generate_wikitable_dataset,
    misplace_cells,
    typo_cells,
)
from repro.datasets.corruption import _typo


def rng(seed=0):
    return np.random.default_rng(seed)


def make_table(num_cols=3, num_rows=6) -> Table:
    return Table(
        columns=[
            Column(
                values=[f"c{c}r{r}" for r in range(num_rows)],
                type_labels=[f"type{c}"],
            )
            for c in range(num_cols)
        ],
        table_id="t",
        relation_labels={(0, 1): ["rel"]},
    )


class TestDropCells:
    def test_rate_zero_changes_nothing(self):
        table = make_table()
        out = drop_cells(table, 0.0, rng())
        assert all(
            out.columns[c].values == table.columns[c].values
            for c in range(table.num_columns)
        )

    def test_rate_one_empties_everything(self):
        out = drop_cells(make_table(), 1.0, rng())
        assert all(v == "" for col in out.columns for v in col.values)

    def test_input_not_mutated(self):
        table = make_table()
        before = [list(col.values) for col in table.columns]
        drop_cells(table, 1.0, rng())
        assert [list(col.values) for col in table.columns] == before

    def test_intermediate_rate_drops_roughly_rate(self):
        table = make_table(num_cols=4, num_rows=50)
        out = drop_cells(table, 0.3, rng(1))
        total = sum(col.num_rows for col in out.columns)
        empty = sum(1 for col in out.columns for v in col.values if v == "")
        assert 0.15 < empty / total < 0.45

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError, match="rate"):
            drop_cells(make_table(), 1.5, rng())


class TestMisplaceCells:
    def test_preserves_multiset_of_row_values(self):
        """Misplacing swaps within a row: each row keeps the same cell multiset."""
        table = make_table(num_cols=4, num_rows=10)
        out = misplace_cells(table, 0.5, rng(2))
        for r in range(10):
            before = sorted(col.values[r] for col in table.columns)
            after = sorted(col.values[r] for col in out.columns)
            assert after == before

    def test_rate_one_moves_cells(self):
        table = make_table(num_cols=3, num_rows=20)
        out = misplace_cells(table, 1.0, rng(3))
        moved = sum(
            1
            for c in range(3)
            for r in range(20)
            if out.columns[c].values[r] != table.columns[c].values[r]
        )
        assert moved > 20  # most cells ended up in another column

    def test_single_column_unchanged(self):
        table = Table(columns=[Column(values=["a", "b"])])
        out = misplace_cells(table, 1.0, rng())
        assert out.columns[0].values == ["a", "b"]

    def test_labels_untouched(self):
        out = misplace_cells(make_table(), 1.0, rng())
        assert out.columns[0].type_labels == ["type0"]
        assert out.relation_labels == {(0, 1): ["rel"]}


class TestTypoCells:
    def test_rate_one_changes_most_cells(self):
        table = make_table(num_cols=2, num_rows=30)
        out = typo_cells(table, 1.0, rng(4))
        changed = sum(
            1
            for c in range(2)
            for r in range(30)
            if out.columns[c].values[r] != table.columns[c].values[r]
        )
        # duplicate/delete/transpose can no-op on repeated characters
        assert changed > 40

    def test_empty_string_survives(self):
        assert _typo("", rng()) == ""

    def test_single_char_never_deleted_to_empty(self):
        for seed in range(20):
            assert len(_typo("x", rng(seed))) >= 1

    @given(st.text(min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_typo_edit_distance_at_most_one_insertion(self, value):
        out = _typo(value, rng(0))
        assert abs(len(out) - len(value)) <= 1


class TestCorruptionConfig:
    def test_clean_flag(self):
        assert CorruptionConfig().is_clean
        assert not CorruptionConfig(missing_rate=0.1).is_clean

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            CorruptionConfig(typo_rate=-0.1)

    def test_corrupt_table_clean_config_returns_copy(self):
        table = make_table()
        out = corrupt_table(table, CorruptionConfig(), rng())
        assert out is not table
        assert out.columns[0].values == table.columns[0].values


class TestCorruptDataset:
    def test_vocab_and_labels_preserved(self):
        dataset = generate_wikitable_dataset(num_tables=8, seed=5)
        config = CorruptionConfig(missing_rate=0.2, misplaced_rate=0.2, typo_rate=0.2)
        dirty = corrupt_dataset(dataset, config, seed=1)
        assert dirty.type_vocab == dataset.type_vocab
        assert dirty.relation_vocab == dataset.relation_vocab
        for t_in, t_out in zip(dataset.tables, dirty.tables):
            assert t_out.relation_labels == t_in.relation_labels
            assert [c.type_labels for c in t_out.columns] == [
                c.type_labels for c in t_in.columns
            ]

    def test_name_records_rates(self):
        dataset = generate_viznet_dataset(num_tables=4, seed=0)
        dirty = corrupt_dataset(dataset, CorruptionConfig(missing_rate=0.25), seed=0)
        assert "m0.25" in dirty.name

    def test_deterministic_under_seed(self):
        dataset = generate_viznet_dataset(num_tables=6, seed=2)
        config = CorruptionConfig(missing_rate=0.3, typo_rate=0.3)
        a = corrupt_dataset(dataset, config, seed=9)
        b = corrupt_dataset(dataset, config, seed=9)
        for t_a, t_b in zip(a.tables, b.tables):
            for c_a, c_b in zip(t_a.columns, t_b.columns):
                assert c_a.values == c_b.values

    def test_different_seed_differs(self):
        dataset = generate_viznet_dataset(num_tables=6, seed=2)
        config = CorruptionConfig(missing_rate=0.5)
        a = corrupt_dataset(dataset, config, seed=1)
        b = corrupt_dataset(dataset, config, seed=2)
        assert any(
            c_a.values != c_b.values
            for t_a, t_b in zip(a.tables, b.tables)
            for c_a, c_b in zip(t_a.columns, t_b.columns)
        )

    def test_original_dataset_untouched(self):
        dataset = generate_viznet_dataset(num_tables=4, seed=3)
        snapshot = [
            list(col.values) for t in dataset.tables for col in t.columns
        ]
        corrupt_dataset(
            dataset,
            CorruptionConfig(missing_rate=1.0, misplaced_rate=1.0, typo_rate=1.0),
            seed=0,
        )
        assert snapshot == [
            list(col.values) for t in dataset.tables for col in t.columns
        ]
