"""Tests for per-head attention analysis (repro.analysis.heads)."""

import numpy as np
import pytest

from repro.analysis import (
    head_agreement_matrix,
    head_attention_entropy,
    summarize_heads,
)


@pytest.fixture(scope="module")
def trainer_and_tables(shared_tiny_annotator):
    trainer = shared_tiny_annotator.trainer
    tables = trainer.dataset.tables[:5]
    return trainer, tables


class TestHeadEntropy:
    def test_shape_and_bounds(self, trainer_and_tables):
        trainer, tables = trainer_and_tables
        entropy = head_attention_entropy(trainer, tables)
        config = trainer.model.config
        assert entropy.shape == (config.num_layers, config.num_heads)
        assert (entropy >= 0.0).all()
        assert (entropy <= 1.0 + 1e-9).all()

    def test_empty_tables_raise(self, trainer_and_tables):
        trainer, _ = trainer_and_tables
        with pytest.raises(ValueError, match="no tables"):
            head_attention_entropy(trainer, [])

    def test_deterministic(self, trainer_and_tables):
        trainer, tables = trainer_and_tables
        a = head_attention_entropy(trainer, tables)
        b = head_attention_entropy(trainer, tables)
        np.testing.assert_allclose(a, b)


class TestHeadAgreement:
    def test_symmetric_with_unit_diagonal(self, trainer_and_tables):
        trainer, tables = trainer_and_tables
        agreement = head_agreement_matrix(trainer, tables)
        np.testing.assert_allclose(agreement, agreement.T, atol=1e-6)
        np.testing.assert_allclose(np.diag(agreement), 1.0, atol=1e-5)

    def test_heads_not_fully_redundant(self, trainer_and_tables):
        """The paper's premise: different heads attend differently."""
        trainer, tables = trainer_and_tables
        agreement = head_agreement_matrix(trainer, tables)
        h = agreement.shape[0]
        if h > 1:
            off_diag = agreement[~np.eye(h, dtype=bool)]
            assert off_diag.min() < 0.999

    def test_layer_indexing(self, trainer_and_tables):
        trainer, tables = trainer_and_tables
        first = head_agreement_matrix(trainer, tables, layer=0)
        last = head_agreement_matrix(trainer, tables, layer=-1)
        assert first.shape == last.shape
        assert not np.allclose(first, last)


class TestSummary:
    def test_one_summary_per_layer(self, trainer_and_tables):
        trainer, tables = trainer_and_tables
        summaries = summarize_heads(trainer, tables)
        assert len(summaries) == trainer.model.config.num_layers
        for layer_index, summary in enumerate(summaries):
            assert summary.layer == layer_index
            assert 0.0 <= summary.mean_entropy <= 1.0
            assert summary.entropy_spread >= 0.0
            assert -1.0 <= summary.mean_pairwise_agreement <= 1.0 + 1e-9
