"""The multi-model serving gateway: registry, routing, isolation, asyncio.

The load-bearing guarantees (the ISSUE-4 acceptance criteria):

* a gateway with two registered models serves a mixed corpus where every
  result is **byte-identical** to the corresponding single-engine
  ``engine.annotate`` output — from the thread ``submit()`` path *and*
  the asyncio ``asubmit()``/``astream()`` path;
* dedup and disk-cache state never leak across models: keys embed each
  model's fingerprint, and the registry roots one disk-cache directory
  per fingerprint;
* LRU eviction of idle engines is invisible to correctness — an evicted
  model transparently reloads from its checkpoint and answers
  byte-identically;
* routes resolve by registered name or model fingerprint, and a request's
  own ``model`` field wins over call-site defaults.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.core import Doduo, DoduoConfig, DoduoTrainer, save_annotator
from repro.datasets import generate_wikitable_dataset
from repro.nn import TransformerConfig
from repro.serving import (
    AnnotationEngine,
    AnnotationGateway,
    AnnotationRequest,
    AnnotationService,
    EngineConfig,
    ModelRegistry,
    QueueConfig,
)
from repro.text import train_wordpiece


def _make_trainer(seed: int) -> DoduoTrainer:
    dataset = generate_wikitable_dataset(num_tables=14, seed=seed, max_rows=3)
    tokenizer = train_wordpiece(dataset.all_cell_text(), vocab_size=500)
    encoder_config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        hidden_dim=16,
        num_layers=1,
        num_heads=2,
        ffn_dim=32,
        max_position=160,
        num_segments=8,
        dropout=0.0,
    )
    config = DoduoConfig(epochs=1, batch_size=4, keep_best_checkpoint=False)
    trainer = DoduoTrainer(dataset, tokenizer, encoder_config, config)
    trainer.train()
    return trainer


@pytest.fixture(scope="module")
def trainer_a():
    return _make_trainer(31)


@pytest.fixture(scope="module")
def trainer_b():
    return _make_trainer(47)


@pytest.fixture(scope="module")
def bundles(trainer_a, trainer_b, tmp_path_factory):
    root = tmp_path_factory.mktemp("gateway-bundles")
    save_annotator(Doduo(trainer_a), root / "a")
    save_annotator(Doduo(trainer_b), root / "b")
    return {"a": root / "a", "b": root / "b"}


def _direct(trainer, tables):
    engine = AnnotationEngine(trainer)
    return [engine.annotate(t) for t in tables]


def _assert_same_annotation(got, want):
    assert got.coltypes == want.coltypes
    assert got.type_scores == want.type_scores  # exact floats
    assert got.colrels == want.colrels
    assert np.array_equal(got.colemb, want.colemb)


@pytest.mark.smoke
class TestRouting:
    def test_mixed_corpus_byte_identical_per_model(self, trainer_a, trainer_b):
        """The acceptance regression: two models behind one gateway, an
        interleaved corpus, every answer byte-identical to the dedicated
        single-engine output of the model that served it."""
        tables = trainer_a.dataset.tables[:5]
        want_a = _direct(trainer_a, tables)
        want_b = _direct(trainer_b, tables)
        registry = ModelRegistry()
        registry.register("a", trainer_a)
        registry.register("b", trainer_b)
        with AnnotationGateway(registry, QueueConfig(max_latency=0.05)) as gateway:
            futures = []
            for table in tables:  # interleaved submission order
                futures.append(("a", gateway.submit(table, model="a")))
                futures.append(("b", gateway.submit(table, model="b")))
            results = {"a": [], "b": []}
            for route, future in futures:
                results[route].append(future.result())
        for i in range(len(tables)):
            _assert_same_annotation(results["a"][i], want_a[i])
            _assert_same_annotation(results["b"][i], want_b[i])
        # Different weights genuinely answered: the scores differ.
        assert results["a"][0].type_scores != results["b"][0].type_scores

    def test_default_route_and_request_field_priority(
        self, trainer_a, trainer_b
    ):
        table = trainer_a.dataset.tables[0]
        want_a = _direct(trainer_a, [table])[0]
        want_b = _direct(trainer_b, [table])[0]
        registry = ModelRegistry()
        registry.register("a", trainer_a)  # first registered = default
        registry.register("b", trainer_b)
        with AnnotationGateway(registry) as gateway:
            _assert_same_annotation(gateway.annotate(table), want_a)
            # The request's own model field wins over the call-site route.
            request = AnnotationRequest(table=table, model="b")
            _assert_same_annotation(
                gateway.annotate(request, model="a"), want_b
            )

    def test_fingerprint_route(self, trainer_a, trainer_b):
        table = trainer_a.dataset.tables[0]
        want_b = _direct(trainer_b, [table])[0]
        registry = ModelRegistry()
        registry.register("a", trainer_a)
        registry.register("b", trainer_b)
        fingerprint = registry.fingerprint_of("b", load=True)
        assert fingerprint is not None
        with AnnotationGateway(registry) as gateway:
            _assert_same_annotation(
                gateway.annotate(table, model=fingerprint), want_b
            )

    def test_unknown_route_raises(self, trainer_a):
        registry = ModelRegistry()
        registry.register("a", trainer_a)
        with AnnotationGateway(registry) as gateway:
            with pytest.raises(KeyError, match="no model registered"):
                gateway.submit(trainer_a.dataset.tables[0], model="nope")

    def test_closed_gateway_rejects(self, trainer_a):
        gateway = AnnotationGateway.for_engine(AnnotationEngine(trainer_a))
        table = trainer_a.dataset.tables[0]
        assert gateway.annotate(table).coltypes
        gateway.close()
        with pytest.raises(RuntimeError, match="closed"):
            gateway.submit(table)
        gateway.close()  # idempotent


@pytest.mark.smoke
class TestIsolation:
    def test_dedup_never_crosses_models(self, trainer_a, trainer_b):
        """One popular table asked of both models: each model's worker
        dedups its own duplicates, but the two models never share an
        annotation (their fingerprints differ, so their keys differ)."""
        table = trainer_a.dataset.tables[0]
        registry = ModelRegistry()
        registry.register("a", trainer_a)
        registry.register("b", trainer_b)
        with AnnotationGateway(
            registry, QueueConfig(max_batch=16, max_latency=0.2)
        ) as gateway:
            futures = [
                gateway.submit(table, model=route)
                for _ in range(4)
                for route in ("a", "b")
            ]
            results = [f.result() for f in futures]
        stats = gateway.stats
        # 8 submissions collapse to exactly TWO annotations — one per model,
        # never one shared across them.
        assert stats.submitted == 8
        assert stats.unique_annotated == 2
        assert stats.dedup_hits == 6
        assert stats.models["a"].unique_annotated == 1
        assert stats.models["b"].unique_annotated == 1
        a_scores = [r.type_scores for r in results[0::2]]
        b_scores = [r.type_scores for r in results[1::2]]
        assert all(s == a_scores[0] for s in a_scores)
        assert all(s == b_scores[0] for s in b_scores)
        assert a_scores[0] != b_scores[0]  # different models really answered

    def test_disk_cache_partitioned_per_fingerprint(
        self, trainer_a, trainer_b, tmp_path
    ):
        cache_root = tmp_path / "cache"
        tables = trainer_a.dataset.tables[:3]

        def build():
            registry = ModelRegistry(cache_dir=cache_root)
            registry.register("a", trainer_a)
            registry.register("b", trainer_b)
            return AnnotationGateway(registry, QueueConfig(max_latency=0.05))

        with build() as gateway:
            for table in tables:
                gateway.annotate(table, model="a")
                gateway.annotate(table, model="b")
            cold = gateway.stats
        assert cold.disk_hits == 0
        # One segment directory per model fingerprint, and they differ.
        fp_a = trainer_a.annotation_fingerprint()
        fp_b = trainer_b.annotation_fingerprint()
        assert fp_a != fp_b
        assert list((cache_root / fp_a).glob("segment-*.jsonl"))
        assert list((cache_root / fp_b).glob("segment-*.jsonl"))
        # A fresh gateway over the same root answers everything from disk,
        # each model from its own partition, byte-identically.
        want_a = _direct(trainer_a, tables)
        want_b = _direct(trainer_b, tables)
        with build() as warm:
            passes_before = (
                trainer_a.model.encode_calls + trainer_b.model.encode_calls
            )
            for i, table in enumerate(tables):
                _assert_same_annotation(warm.annotate(table, model="a"), want_a[i])
                _assert_same_annotation(warm.annotate(table, model="b"), want_b[i])
            assert (
                trainer_a.model.encode_calls + trainer_b.model.encode_calls
                == passes_before
            )
            warm_stats = warm.stats
        assert warm_stats.disk_hits == 2 * len(tables)
        assert warm_stats.engines["a"].disk_hits == len(tables)
        assert warm_stats.engines["b"].disk_hits == len(tables)


    def test_same_weights_two_names_share_one_cache_handle(
        self, bundles, trainer_a, tmp_path
    ):
        """Two registrations of the same bundle share ONE DiskCache handle
        (the one-writer-per-directory contract) — and therefore share
        cached work: what one name computes, the other serves from disk."""
        registry = ModelRegistry(cache_dir=tmp_path / "cache")
        registry.register("x", bundles["a"])
        registry.register("y", bundles["a"])
        engine_x, engine_y = registry.get("x"), registry.get("y")
        assert engine_x is not engine_y
        assert engine_x.result_cache is engine_y.result_cache
        table = trainer_a.dataset.tables[0]
        with AnnotationGateway(registry, QueueConfig(max_latency=0.02)) as gateway:
            via_x = gateway.annotate(table, model="x")
            via_y = gateway.annotate(table, model="y")
        _assert_same_annotation(via_y, via_x)
        assert via_y.from_disk  # y answered from x's cached annotation
        assert engine_y.stats.encoder_passes == 0


@pytest.mark.smoke
class TestEviction:
    def test_lru_eviction_reloads_byte_identically(self, bundles, trainer_a):
        registry = ModelRegistry(max_live=1)
        registry.register("a", bundles["a"])
        registry.register("b", bundles["b"])
        with AnnotationGateway(registry, QueueConfig(max_latency=0.02)) as gateway:
            # Load A lazily and capture its answer.
            table_a = trainer_a.dataset.tables[0]
            first = gateway.annotate(table_a, model="a")
            # Routing to B exceeds max_live=1 and evicts idle A.
            gateway.annotate(table_a, model="b")
            assert registry.live_names() == ["b"]
            assert registry.stats.evictions >= 1
            # A still resolves (fingerprints survive eviction), reloads,
            # and answers byte-identically to its pre-eviction self.
            again = gateway.annotate(table_a, model="a")
            _assert_same_annotation(again, first)
        assert registry.stats.reloads >= 1

    def test_pinned_floor_never_evicted(self, bundles):
        registry = ModelRegistry(max_live=1)
        registry.register("a", bundles["a"], pinned=True)
        registry.register("b", bundles["b"])
        engine_a = registry.get("a")
        registry.get("b")  # overshoots max_live, but A is the pinned floor
        assert sorted(registry.live_names()) == ["a", "b"]
        assert registry.get("a") is engine_a  # same object: never dropped
        # B (unpinned) is the one evicted once something else needs room.
        registry.evict("b")
        assert registry.live_names() == ["a"]

    def test_in_memory_registrations_cannot_evict(self, trainer_a):
        registry = ModelRegistry()
        registry.register("a", trainer_a)
        with pytest.raises(ValueError, match="in-memory"):
            registry.evict("a")
        with pytest.raises(ValueError, match="in-memory"):
            registry.unpin("a")

    def test_same_live_object_under_two_names_rejected(self, trainer_a):
        """One engine/trainer object = one serving thread; aliasing the
        same live object under two names would race two workers over one
        un-locked pipeline.  Aliases must go through bundle paths."""
        registry = ModelRegistry()
        registry.register("a", trainer_a)
        with pytest.raises(ValueError, match="already serves"):
            registry.register("alias", trainer_a)
        with pytest.raises(ValueError, match="already serves"):
            registry.register("alias", AnnotationEngine(trainer_a))

    def test_explicit_evict_closes_stale_worker_on_reap(self, bundles, trainer_a):
        registry = ModelRegistry()
        registry.register("a", bundles["a"])
        with AnnotationGateway(registry, QueueConfig(max_latency=0.02)) as gateway:
            table = trainer_a.dataset.tables[0]
            before = gateway.annotate(table, model="a")
            registry.evict("a")
            assert gateway.reap() == 1
            # The route transparently reloads and keeps answering.
            _assert_same_annotation(gateway.annotate(table, model="a"), before)
            # Retired worker stats still count toward gateway totals: one
            # completion before eviction (on the reaped worker) plus one
            # after the reload — and the retired ENGINE's passes stay in
            # the totals too (totals never regress across evict/reload).
            stats = gateway.stats
            assert stats.completed == 2
            assert stats.encoder_passes >= 2
            assert stats.encoder_passes > stats.engines["a"].encoder_passes


@pytest.mark.smoke
class TestHotMutation:
    """PR-5 registry mutation: repoint/unregister on a live gateway."""

    def test_repoint_swaps_weights_without_restart(
        self, bundles, trainer_a, trainer_b
    ):
        registry = ModelRegistry()
        registry.register("live", bundles["a"])
        table = trainer_a.dataset.tables[0]
        want_a = _direct(trainer_a, [table])[0]
        want_b = _direct(trainer_b, [table])[0]
        with AnnotationGateway(registry, QueueConfig(max_latency=0.02)) as gateway:
            _assert_same_annotation(gateway.annotate(table, model="live"), want_a)
            gateway.repoint("live", bundles["b"])
            _assert_same_annotation(gateway.annotate(table, model="live"), want_b)
        assert registry.stats.repoints == 1
        # The retired worker's completions still count toward totals.
        assert gateway.stats.completed == 2

    def test_repoint_preserves_default_and_order(self, bundles):
        registry = ModelRegistry()
        registry.register("first", bundles["a"])
        registry.register("second", bundles["b"])
        registry.repoint("first", bundles["b"])
        assert registry.default_name == "first"
        assert registry.names() == ["first", "second"]

    def test_repoint_drops_old_fingerprint_route(self, bundles, trainer_a):
        registry = ModelRegistry()
        registry.register("only", bundles["a"])
        fingerprint = registry.fingerprint_of("only", load=True)
        assert registry.resolve(fingerprint) == "only"
        registry.repoint("only", bundles["b"])
        # Content-addressed clients pinned to the OLD weights must miss
        # cleanly now — nothing serves them anymore.
        with pytest.raises(KeyError):
            registry.resolve(fingerprint)
        # The new weights' fingerprint resolves once loaded.
        new_fingerprint = registry.fingerprint_of("only", load=True)
        assert new_fingerprint != fingerprint
        assert registry.resolve(new_fingerprint) == "only"

    def test_repoint_validation_leaves_old_binding_untouched(
        self, bundles, trainer_a, tmp_path
    ):
        registry = ModelRegistry()
        registry.register("live", bundles["a"])
        with pytest.raises(KeyError, match="no model registered"):
            registry.repoint("ghost", bundles["b"])
        with pytest.raises(ValueError, match="not a bundle directory"):
            registry.repoint("live", tmp_path)
        # Still serving the original weights.
        engine = registry.get("live")
        assert engine.annotate(trainer_a.dataset.tables[0]).coltypes
        assert registry.stats.repoints == 0

    def test_churn_releases_unreferenced_cache_handles(
        self, bundles, trainer_a, trainer_b, tmp_path
    ):
        """Repoint/unregister over unique models must not accumulate
        dead per-fingerprint DiskCache handles (their in-memory indexes
        live as long as the dict entry does)."""
        registry = ModelRegistry(cache_dir=tmp_path / "cache")
        fp_a = trainer_a.annotation_fingerprint()
        fp_b = trainer_b.annotation_fingerprint()
        registry.register("live", bundles["a"])
        registry.get("live")  # load: opens fp_a's handle
        assert fp_a in registry._disk_caches
        registry.repoint("live", bundles["b"])
        assert fp_a not in registry._disk_caches  # old handle released
        registry.get("live")
        assert fp_b in registry._disk_caches
        registry.unregister("live")
        assert registry._disk_caches == {}
        # Shared fingerprints survive: two names over one bundle keep
        # the handle until the LAST reference goes.
        registry.register("x", bundles["a"])
        registry.register("y", bundles["a"])
        registry.get("x"), registry.get("y")
        registry.unregister("x")
        assert fp_a in registry._disk_caches
        registry.unregister("y")
        assert fp_a not in registry._disk_caches

    def test_repoint_to_in_memory_source_is_pinned(self, bundles, trainer_a):
        registry = ModelRegistry()
        registry.register("live", bundles["b"])
        registry.repoint("live", trainer_a)
        entry = registry._entries["live"]
        assert entry.pinned and entry.path is None
        assert registry.get("live").trainer is trainer_a

    def test_gateway_unregister_rejects_then_keyerrors(self, trainer_a, trainer_b):
        registry = ModelRegistry()
        registry.register("a", trainer_a)
        registry.register("b", trainer_b)
        table = trainer_a.dataset.tables[0]
        with AnnotationGateway(registry, QueueConfig(max_latency=0.02)) as gateway:
            assert gateway.annotate(table, model="b").coltypes
            gateway.unregister("b")
            with pytest.raises(KeyError, match="no model registered"):
                gateway.submit(table, model="b")
            # The other route is untouched.
            assert gateway.annotate(table, model="a").coltypes
        assert registry.names() == ["a"]
        # The unregistered route leaves the per-name stats maps (bounded
        # under register/unregister churn) but its history stays in the
        # scalar totals (they never deflate).
        stats = gateway.stats
        assert "b" not in stats.models
        assert "b" not in stats.engines
        assert stats.completed == 2
        assert stats.encoder_passes >= 2

    def test_stats_to_dict_round_trips_json(self, trainer_a):
        import json as _json

        gateway = AnnotationGateway.for_engine(AnnotationEngine(trainer_a))
        with gateway:
            gateway.annotate(trainer_a.dataset.tables[0])
            payload = _json.loads(_json.dumps(gateway.stats.to_dict()))
        assert payload["completed"] == 1
        assert payload["models"]["default"]["completed"] == 1
        assert payload["engines"]["default"]["encoder_passes"] >= 1
        assert "padding_waste" in payload["engines"]["default"]


@pytest.mark.smoke
class TestAsyncio:
    def test_asubmit_byte_identical_to_submit(self, trainer_a, trainer_b):
        tables = trainer_a.dataset.tables[:4]
        registry = ModelRegistry()
        registry.register("a", trainer_a)
        registry.register("b", trainer_b)
        with AnnotationGateway(registry, QueueConfig(max_latency=0.02)) as gateway:
            threaded = {
                route: [gateway.annotate(t, model=route) for t in tables]
                for route in ("a", "b")
            }

            async def run():
                out = {}
                for route in ("a", "b"):
                    out[route] = [
                        await gateway.asubmit(t, model=route) for t in tables
                    ]
                return out

            awaited = asyncio.run(run())
        for route in ("a", "b"):
            for got, want in zip(awaited[route], threaded[route]):
                _assert_same_annotation(got, want)

    def test_astream_preserves_order_across_models(self, trainer_a, trainer_b):
        tables = trainer_a.dataset.tables[:6]
        registry = ModelRegistry()
        registry.register("a", trainer_a)
        registry.register("b", trainer_b)
        # Alternate routes via the request's own model field.
        requests = [
            AnnotationRequest(table=t, model=("a" if i % 2 == 0 else "b"))
            for i, t in enumerate(tables)
        ]
        with AnnotationGateway(registry, QueueConfig(max_latency=0.02)) as gateway:

            async def run():
                results = []
                async for result in gateway.astream(requests, window=3):
                    results.append(result)
                return results

            streamed = asyncio.run(run())
        assert [r.table.table_id for r in streamed] == [
            t.table_id for t in tables
        ]
        want_a = _direct(trainer_a, tables[0::2])
        want_b = _direct(trainer_b, tables[1::2])
        for got, want in zip(streamed[0::2], want_a):
            _assert_same_annotation(got, want)
        for got, want in zip(streamed[1::2], want_b):
            _assert_same_annotation(got, want)

    def test_asubmit_backpressure_yields_not_blocks(self, trainer_a):
        """With a tiny queue and no worker yet started, asubmit must retry
        via the event loop (other coroutines keep running) instead of
        blocking the loop thread."""
        gateway = AnnotationGateway.for_engine(
            AnnotationEngine(trainer_a),
            queue_config=QueueConfig(
                max_queue_size=1, max_latency=0.01, submit_timeout=5.0
            ),
        )
        table = trainer_a.dataset.tables[0]
        ticks = []

        async def ticker():
            for _ in range(5):
                ticks.append(1)
                await asyncio.sleep(0.002)

        async def run():
            submits = [gateway.asubmit(table) for _ in range(6)]
            results, _ = await asyncio.gather(
                asyncio.gather(*submits), ticker()
            )
            return results

        with gateway:
            results = asyncio.run(run())
        assert len(results) == 6
        assert len(ticks) == 5  # the loop stayed responsive throughout


@pytest.mark.smoke
class TestCompatibilityWrappers:
    def test_service_is_a_single_entry_gateway(self, trainer_a):
        service = AnnotationService(AnnotationEngine(trainer_a))
        assert isinstance(service.gateway, AnnotationGateway)
        assert service.gateway.registry.names() == [AnnotationService.MODEL_NAME]
        with service:
            result = service.annotate(trainer_a.dataset.tables[0])
        want = _direct(trainer_a, [trainer_a.dataset.tables[0]])[0]
        _assert_same_annotation(result, want)
        assert service.stats.completed == 1

    def test_doduo_gateway_property(self, trainer_a):
        annotator = Doduo(trainer_a)
        assert isinstance(annotator.gateway, AnnotationGateway)
        # The sync wrapper and the gateway route to the same engine object.
        assert annotator.engine is annotator.gateway.registry.get()

    def test_submit_from_many_threads_across_models(
        self, trainer_a, trainer_b
    ):
        tables = trainer_a.dataset.tables[:8]
        registry = ModelRegistry()
        registry.register("a", trainer_a)
        registry.register("b", trainer_b)
        results = {}
        with AnnotationGateway(
            registry, QueueConfig(max_batch=4, max_latency=0.02)
        ) as gateway:

            def client(index):
                route = "a" if index % 2 == 0 else "b"
                results[index] = (
                    route,
                    gateway.submit(tables[index], model=route).result(timeout=30),
                )

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(tables))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        reference = {
            "a": AnnotationEngine(trainer_a),
            "b": AnnotationEngine(trainer_b),
        }
        for index, (route, result) in results.items():
            want = reference[route].annotate(tables[index])
            _assert_same_annotation(result, want)
