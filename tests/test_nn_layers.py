"""Tests for Module machinery and core layers."""

import numpy as np
import pytest

from repro.nn import MLP, Dropout, Embedding, LayerNorm, Linear, Module, Tensor

from helpers import rng


class TestModule:
    def test_named_parameters_nested(self):
        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.linear = Linear(2, 3, rng(0))
                self.blocks = [Linear(3, 3, rng(1)), Linear(3, 3, rng(2))]

        outer = Outer()
        names = {name for name, _ in outer.named_parameters()}
        assert "linear.weight" in names
        assert "linear.bias" in names
        assert "blocks.0.weight" in names
        assert "blocks.1.bias" in names

    def test_num_parameters(self):
        layer = Linear(4, 5, rng(0))
        assert layer.num_parameters() == 4 * 5 + 5

    def test_state_dict_roundtrip(self):
        a = Linear(3, 3, rng(1))
        b = Linear(3, 3, rng(2))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_load_state_dict_shape_mismatch(self):
        a = Linear(3, 3, rng(1))
        state = a.state_dict()
        state["weight"] = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_load_state_dict_missing_key(self):
        a = Linear(3, 3, rng(1))
        state = a.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            a.load_state_dict(state)

    def test_train_eval_mode_propagates(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.drop = Dropout(0.5, rng(0))
                self.children_list = [Dropout(0.3, rng(1))]

        net = Net()
        net.eval()
        assert not net.drop.training
        assert not net.children_list[0].training
        net.train()
        assert net.drop.training

    def test_zero_grad(self):
        layer = Linear(2, 2, rng(0))
        out = layer(Tensor(np.ones((1, 2), dtype=np.float32)))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 6, rng(0))
        out = layer(Tensor(np.zeros((2, 3, 4), dtype=np.float32)))
        assert out.shape == (2, 3, 6)

    def test_no_bias(self):
        layer = Linear(4, 6, rng(0), bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_affine_correct(self):
        layer = Linear(2, 1, rng(0))
        layer.weight.data = np.array([[2.0], [3.0]], dtype=np.float32)
        layer.bias.data = np.array([1.0], dtype=np.float32)
        out = layer(Tensor(np.array([[1.0, 1.0]], dtype=np.float32)))
        assert out.data[0, 0] == pytest.approx(6.0)

    def test_xavier_scale(self):
        layer = Linear(100, 100, rng(0))
        bound = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.data).max() <= bound + 1e-6


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, rng(0))
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_out_of_range_raises(self):
        emb = Embedding(10, 4, rng(0))
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_scatters(self):
        emb = Embedding(5, 2, rng(0))
        emb(np.array([0, 0, 1])).sum().backward()
        assert emb.weight.grad[0, 0] == pytest.approx(2.0)
        assert emb.weight.grad[4].sum() == 0.0


class TestLayerNorm:
    def test_normalizes(self):
        ln = LayerNorm(8)
        x = Tensor(rng(0).standard_normal((3, 8)).astype(np.float32) * 5 + 2)
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-4)

    def test_parameters(self):
        ln = LayerNorm(8)
        names = {name for name, _ in ln.named_parameters()}
        assert names == {"gamma", "beta"}


class TestDropout:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0, rng(0))

    def test_eval_identity(self):
        drop = Dropout(0.9, rng(0))
        drop.eval()
        x = Tensor(np.ones(10, dtype=np.float32))
        np.testing.assert_allclose(drop(x).data, 1.0)


class TestMLP:
    def test_forward(self):
        mlp = MLP(4, 8, 2, rng(0))
        out = mlp(Tensor(np.zeros((3, 4), dtype=np.float32)))
        assert out.shape == (3, 2)

    def test_invalid_activation(self):
        with pytest.raises(ValueError):
            MLP(4, 8, 2, rng(0), activation="softplus")

    @pytest.mark.parametrize("activation", ["gelu", "relu", "tanh"])
    def test_activations_run(self, activation):
        mlp = MLP(4, 8, 2, rng(0), activation=activation)
        out = mlp(Tensor(rng(1).standard_normal((2, 4)).astype(np.float32)))
        assert np.isfinite(out.data).all()
