"""Tests for temperature scaling and calibration diagnostics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calibration import (
    apply_temperature,
    calibrate_trainer,
    collect_type_logits,
    expected_calibration_error,
    fit_temperature,
    negative_log_likelihood,
)


def overconfident_logits(n=400, classes=4, scale=8.0, accuracy=0.7, seed=0):
    """Synthetic overconfident classifier: huge logits, 70% accuracy."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, classes, n)
    predicted = np.where(
        rng.random(n) < accuracy, labels, (labels + 1) % classes
    )
    logits = rng.normal(0, 0.1, (n, classes))
    logits[np.arange(n), predicted] += scale
    return logits, labels


class TestApplyTemperature:
    def test_rows_are_distributions(self):
        logits, _ = overconfident_logits(n=20)
        probs = apply_temperature(logits, 2.0)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-9)

    def test_argmax_invariant(self):
        logits, _ = overconfident_logits(n=50)
        for t in (0.5, 1.0, 4.0):
            np.testing.assert_array_equal(
                apply_temperature(logits, t).argmax(axis=1),
                logits.argmax(axis=1),
            )

    def test_higher_temperature_softens(self):
        logits, _ = overconfident_logits(n=50)
        sharp = apply_temperature(logits, 0.5).max(axis=1).mean()
        soft = apply_temperature(logits, 4.0).max(axis=1).mean()
        assert soft < sharp

    def test_invalid_temperature(self):
        with pytest.raises(ValueError, match="positive"):
            apply_temperature(np.zeros((2, 2)), 0.0)


class TestFitTemperature:
    def test_overconfident_model_gets_t_above_one(self):
        logits, labels = overconfident_logits()
        assert fit_temperature(logits, labels) > 1.5

    def test_fitted_t_reduces_nll(self):
        logits, labels = overconfident_logits()
        t = fit_temperature(logits, labels)
        assert negative_log_likelihood(logits, labels, t) < (
            negative_log_likelihood(logits, labels, 1.0)
        )

    def test_fitted_t_reduces_ece(self):
        logits, labels = overconfident_logits()
        t = fit_temperature(logits, labels)
        before = expected_calibration_error(apply_temperature(logits, 1.0), labels)
        after = expected_calibration_error(apply_temperature(logits, t), labels)
        assert after < before

    def test_well_calibrated_model_keeps_t_near_one(self):
        rng = np.random.default_rng(1)
        n, classes = 2000, 3
        labels = rng.integers(0, classes, n)
        # true posterior logits: model that knows its own uncertainty
        logits = rng.normal(0, 1.0, (n, classes))
        logits[np.arange(n), labels] += 1.0
        # resample labels FROM the model's own softmax -> perfectly calibrated
        probs = apply_temperature(logits, 1.0)
        labels = np.array([rng.choice(classes, p=p) for p in probs])
        t = fit_temperature(logits, labels)
        assert 0.6 < t < 1.7

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            fit_temperature(np.zeros((0, 3)), [])


class TestEce:
    def test_perfectly_confident_and_correct_is_zero(self):
        probs = np.eye(3)[[0, 1, 2, 0]]
        labels = [0, 1, 2, 0]
        assert expected_calibration_error(probs, labels) == pytest.approx(0.0)

    def test_confident_but_wrong_is_high(self):
        probs = np.eye(3)[[0, 0, 0, 0]]
        labels = [1, 1, 1, 1]
        assert expected_calibration_error(probs, labels) == pytest.approx(1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="aligned"):
            expected_calibration_error(np.zeros((3, 2)), [0, 1])

    @given(seed=st.integers(0, 30))
    @settings(max_examples=20, deadline=None)
    def test_bounded(self, seed):
        rng = np.random.default_rng(seed)
        probs = rng.dirichlet(np.ones(4), size=50)
        labels = rng.integers(0, 4, 50)
        assert 0.0 <= expected_calibration_error(probs, labels) <= 1.0


class TestTrainerIntegration:
    def test_calibrate_trainer_single_label(self):
        from repro.core import DoduoConfig, DoduoTrainer
        from repro.datasets import generate_viznet_dataset, split_dataset
        from repro.nn import TransformerConfig
        from repro.text import train_wordpiece

        dataset = generate_viznet_dataset(num_tables=40, seed=6)
        splits = split_dataset(dataset, seed=0)
        tokenizer = train_wordpiece(splits.train.all_cell_text(), vocab_size=600)
        config = TransformerConfig(
            vocab_size=tokenizer.vocab_size, hidden_dim=16, num_layers=1,
            num_heads=2, ffn_dim=32, max_position=128, num_segments=6,
            dropout=0.0,
        )
        trainer = DoduoTrainer(
            splits.train, tokenizer, config,
            DoduoConfig(tasks=("type",), multi_label=False, epochs=3,
                        batch_size=8, keep_best_checkpoint=False),
        )
        trainer.train()
        temperature = calibrate_trainer(trainer, splits.valid)
        assert temperature > 0
        logits, labels = collect_type_logits(trainer, splits.test)
        assert logits.shape[0] == len(labels)

    def test_multi_label_rejected(self, shared_tiny_annotator):
        with pytest.raises(ValueError, match="single-label"):
            calibrate_trainer(
                shared_tiny_annotator.trainer,
                shared_tiny_annotator.trainer.dataset,
            )
