"""Tests for the schema matching / clustering substrate (case study)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import Column, Table, generate_enterprise_dataset
from repro.matching import (
    ComaConfig,
    ComaMatcher,
    DistributionBasedMatcher,
    FastTextLike,
    UnionFind,
    kmeans,
    levenshtein,
    matches_to_clusters,
    name_similarity,
    quantile_distance,
    token_distribution_similarity,
    trigram_similarity,
)

from helpers import rng


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [("", "", 0), ("abc", "abc", 0), ("abc", "abd", 1),
         ("abc", "", 3), ("kitten", "sitting", 3), ("flaw", "lawn", 2)],
    )
    def test_known_distances(self, a, b, expected):
        assert levenshtein(a, b) == expected

    @settings(max_examples=50, deadline=None)
    @given(st.text(max_size=10), st.text(max_size=10))
    def test_property_symmetric_and_bounded(self, a, b):
        d = levenshtein(a, b)
        assert d == levenshtein(b, a)
        assert d <= max(len(a), len(b))
        assert (d == 0) == (a == b)


class TestNameSimilarities:
    def test_identical(self):
        assert name_similarity("job_title", "job_title") == 1.0
        assert trigram_similarity("title", "title") == 1.0

    def test_disjoint(self):
        assert name_similarity("abc", "xyz") == 0.0

    def test_related_names_score_higher(self):
        related = name_similarity("job_title", "jobtitle")
        unrelated = name_similarity("job_title", "review_id")
        assert related > unrelated

    def test_empty_names(self):
        assert name_similarity("", "") == 1.0
        assert trigram_similarity("", "") == 1.0


class TestComaMatcher:
    def make_tables(self):
        a = Table(columns=[
            Column(values=["alpha", "beta", "gamma"], header="status"),
            Column(values=["1.2", "3.4", "5.6"], header="score"),
        ])
        b = Table(columns=[
            Column(values=["alpha", "gamma", "beta"], header="state"),
            Column(values=["2.2", "4.4", "1.6"], header="rating"),
        ])
        return a, b

    def test_instance_overlap_drives_match(self):
        a, b = self.make_tables()
        matcher = ComaMatcher()
        matches = matcher.match(a, b)
        assert (0, 0) in [(i, j) for i, j, _ in matches]

    def test_one_to_one(self):
        a, b = self.make_tables()
        matches = ComaMatcher().match(a, b)
        lefts = [i for i, _, _ in matches]
        rights = [j for _, j, _ in matches]
        assert len(lefts) == len(set(lefts))
        assert len(rights) == len(set(rights))

    def test_threshold_respected(self):
        a, b = self.make_tables()
        strict = ComaMatcher(ComaConfig(threshold=0.99))
        assert strict.match(a, b) == []


class TestDistributionMatcher:
    def test_quantile_distance_identical(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert quantile_distance(x, x) == 0.0

    def test_quantile_distance_is_shape_based(self):
        """Scale-free: a rescaled sample has the same shape (distance 0),
        while a genuinely different shape is far (the published method's
        merge-happy behaviour on uniform ID/count/timestamp columns)."""
        uniform = np.arange(10.0)
        rescaled = quantile_distance(uniform, uniform * 100 + 7)
        skewed = quantile_distance(uniform, np.array([0.0] * 9 + [1.0]))
        assert rescaled == pytest.approx(0.0, abs=1e-12)
        assert skewed > 0.2

    def test_numeric_columns_with_same_range_match(self):
        matcher = DistributionBasedMatcher()
        a = [str(v) for v in range(100, 200, 10)]
        b = [str(v) for v in range(105, 205, 10)]
        assert matcher.column_match_score(a, b) > 0

    def test_numeric_vs_string_never_match(self):
        matcher = DistributionBasedMatcher()
        assert matcher.column_match_score(["1", "2"], ["abc", "def"]) == 0.0

    def test_string_token_overlap(self):
        matcher = DistributionBasedMatcher()
        a = ["software engineer", "data scientist"]
        b = ["software engineer", "product manager"]
        assert matcher.column_match_score(a, b) > 0

    def test_token_distribution_similarity_bounds(self):
        s = token_distribution_similarity(["a b"], ["a b"])
        assert s == pytest.approx(1.0)
        assert token_distribution_similarity(["a"], ["b"]) == 0.0
        assert token_distribution_similarity([], ["a"]) == 0.0


class TestKMeans:
    def test_separates_blobs(self):
        generator = rng(0)
        blob_a = generator.standard_normal((20, 2)) + np.array([10.0, 0.0])
        blob_b = generator.standard_normal((20, 2)) + np.array([-10.0, 0.0])
        points = np.vstack([blob_a, blob_b])
        assign = kmeans(points, 2, rng(1))
        assert len(set(assign[:20])) == 1
        assert len(set(assign[20:])) == 1
        assert assign[0] != assign[20]

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), 5, rng(0))
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), 0, rng(0))

    def test_deterministic_given_rng(self):
        points = np.random.default_rng(5).standard_normal((30, 3))
        a = kmeans(points, 3, rng(7))
        b = kmeans(points, 3, rng(7))
        np.testing.assert_array_equal(a, b)


class TestUnionFind:
    def test_components(self):
        uf = UnionFind()
        for item in "abcde":
            uf.add(item)
        uf.union("a", "b")
        uf.union("b", "c")
        components = uf.components()
        assert components["a"] == components["c"]
        assert components["a"] != components["d"]

    def test_matches_to_clusters(self):
        items = ["x", "y", "z", "w"]
        labels = matches_to_clusters(items, [("x", "y"), ("z", "w")])
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_no_matches_all_singletons(self):
        labels = matches_to_clusters(["a", "b", "c"], [])
        assert len(set(labels)) == 3


class TestFastTextLike:
    def test_same_word_same_vector(self):
        model = FastTextLike(dim=16, seed=0)
        np.testing.assert_allclose(model.word_vector("hello"), model.word_vector("hello"))

    def test_similar_words_share_ngrams(self):
        model = FastTextLike(dim=32, seed=0)
        sim_related = np.dot(model.word_vector("running"), model.word_vector("runner"))
        sim_unrelated = np.dot(model.word_vector("running"), model.word_vector("zebra"))
        assert sim_related > sim_unrelated

    def test_empty_text_zero_vector(self):
        model = FastTextLike(dim=8, seed=0)
        assert model.text_vector("").sum() == 0.0
        assert model.values_vector([]).sum() == 0.0

    def test_training_moves_cooccurring_words_together(self):
        corpus = ["apple banana sweet fruit"] * 30 + ["engine motor steel wheel"] * 30
        model = FastTextLike(dim=16, seed=0)

        def cosine(a, b):
            return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-9))

        before = cosine(model.word_vector("apple"), model.word_vector("banana"))
        model.train(corpus, epochs=3)
        after = cosine(model.word_vector("apple"), model.word_vector("banana"))
        cross = cosine(model.word_vector("apple"), model.word_vector("engine"))
        assert after > before
        assert after > cross


class TestCaseStudySubstrate:
    def test_enterprise_matchers_find_some_structure(self):
        dataset = generate_enterprise_dataset(seed=23)
        matcher = DistributionBasedMatcher()
        matches = matcher.match(dataset.tables[0], dataset.tables[1])
        assert isinstance(matches, list)
        coma = ComaMatcher()
        coma_matches = []
        for a in range(3):
            for b in range(a + 1, 3):
                coma_matches.extend(coma.match(dataset.tables[a], dataset.tables[b]))
        assert coma_matches, "COMA should match at least one column pair"
