"""End-to-end integration tests across substrates.

These exercise the full pipeline the benchmarks rely on:
KB -> corpus -> tokenizer -> MLM pre-training -> fine-tuning -> annotation,
plus checkpointing and the case-study path.
"""

import numpy as np
import pytest

from repro.core import (
    Doduo,
    DoduoConfig,
    PipelineConfig,
    build_knowledge_base,
    build_pretrained_lm,
    clear_pretrain_cache,
    make_trainer,
)
from repro.datasets import (
    generate_enterprise_dataset,
    generate_viznet_dataset,
    generate_wikitable_dataset,
    split_dataset,
)
from repro.matching import FastTextLike, run_case_study
from repro.nn import load_checkpoint, save_checkpoint


TINY = PipelineConfig(
    kb_scale=0.3,
    vocab_size=1200,
    hidden_dim=32,
    num_layers=2,
    num_heads=2,
    ffn_dim=64,
    pretrain_epochs=1,
)


@pytest.fixture(scope="module")
def substrate():
    clear_pretrain_cache()
    tokenizer, pretrained = build_pretrained_lm(TINY)
    return tokenizer, pretrained


class TestPipeline:
    def test_cache_returns_same_objects(self, substrate):
        tokenizer, pretrained = substrate
        tokenizer2, pretrained2 = build_pretrained_lm(TINY)
        assert tokenizer is tokenizer2
        assert pretrained is pretrained2

    def test_kb_build(self):
        kb = build_knowledge_base(TINY)
        assert kb.entities["film"]

    def test_pretraining_happened(self, substrate):
        _, pretrained = substrate
        assert len(pretrained.losses) == 1
        assert np.isfinite(pretrained.final_loss)


class TestEndToEndWikiTable:
    @pytest.fixture(scope="class")
    def trained(self, substrate):
        tokenizer, pretrained = substrate
        dataset = generate_wikitable_dataset(
            num_tables=60, seed=7, kb=build_knowledge_base(TINY), max_rows=5
        )
        splits = split_dataset(dataset, seed=0)
        config = DoduoConfig(epochs=25, batch_size=8, learning_rate=2e-3)
        trainer = make_trainer(splits.train, tokenizer, TINY, config, pretrained=pretrained)
        trainer.train(valid_dataset=splits.valid)
        return trainer, splits

    def test_learns_both_tasks(self, trained):
        trainer, splits = trained
        scores = trainer.evaluate(splits.test)
        assert scores["type"].f1 > 0.3
        assert scores["relation"].f1 > 0.3

    def test_pretrained_encoder_was_loaded(self, substrate, trained):
        """Fine-tuned weights must differ from the pre-trained starting point
        (training moved them) while sharing the architecture."""
        tokenizer, pretrained = substrate
        trainer, _ = trained
        pre_state = pretrained.encoder.state_dict()
        post_state = trainer.model.encoder.state_dict()
        assert set(pre_state) == set(post_state)
        assert any(
            not np.allclose(pre_state[k], post_state[k]) for k in pre_state
        )

    def test_checkpoint_roundtrip_preserves_predictions(self, trained, tmp_path):
        trainer, splits = trained
        table = splits.test.tables[0]
        before = trainer.predict_types([table])[0]
        path = tmp_path / "doduo.npz"
        save_checkpoint(trainer.model, path)
        trainer.model.type_head.out.weight.data += 1.0  # corrupt
        corrupted = trainer.predict_types([table])[0]
        load_checkpoint(trainer.model, path)
        after = trainer.predict_types([table])[0]
        np.testing.assert_array_equal(before, after)
        assert not np.array_equal(before, corrupted) or before.all()

    def test_annotator_on_unseen_table(self, trained):
        trainer, splits = trained
        annotator = Doduo(trainer)
        result = annotator.annotate(splits.test.tables[0])
        assert result.coltypes
        assert result.colemb is not None


class TestEndToEndCaseStudy:
    def test_case_study_runs_and_doduo_embeddings_best_of_doduo_methods(self, substrate):
        tokenizer, pretrained = substrate
        wikitable = generate_wikitable_dataset(
            num_tables=80, seed=7, kb=build_knowledge_base(TINY), max_rows=5
        )
        config = DoduoConfig(epochs=8, batch_size=8, learning_rate=2e-3,
                             keep_best_checkpoint=False)
        trainer = make_trainer(wikitable, tokenizer, TINY, config, pretrained=pretrained)
        trainer.train()

        enterprise = generate_enterprise_dataset(seed=23, num_rows=8)
        fasttext = FastTextLike(dim=16, seed=0)
        fasttext.train(enterprise.all_cell_text()[:300], epochs=1)
        result = run_case_study(enterprise, trainer, fasttext, seed=0)
        assert len(result.scores) == 6
        for name, (h, c, v) in result.scores.items():
            assert 0.0 <= v <= 1.0, name
        # the headline method produces a usable clustering
        assert result.scores["Doduo+column value emb"][2] > 0.3


class TestEndToEndVizNet:
    def test_single_label_path(self, substrate):
        tokenizer, pretrained = substrate
        dataset = generate_viznet_dataset(num_tables=240, seed=11)
        splits = split_dataset(dataset, seed=0)
        config = DoduoConfig(
            tasks=("type",), multi_label=False, epochs=25, batch_size=8,
            learning_rate=2e-3,
        )
        trainer = make_trainer(splits.train, tokenizer, TINY, config, pretrained=pretrained)
        trainer.train(valid_dataset=splits.valid)
        scores = trainer.evaluate(splits.test)
        assert scores["type"].f1 > 0.2
