"""Tests for bootstrap confidence intervals and paired comparisons."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import (
    bootstrap_metric,
    multiclass_micro_f1,
    paired_bootstrap,
)


def accuracy(y_true, y_pred):
    return float((np.asarray(y_true) == np.asarray(y_pred)).mean())


class TestBootstrapMetric:
    def test_perfect_predictions_ci_is_degenerate(self):
        y = list(range(50))
        interval = bootstrap_metric(y, y, accuracy)
        assert interval.estimate == 1.0
        assert interval.lower == 1.0
        assert interval.upper == 1.0

    def test_interval_brackets_estimate(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 3, 200)
        y_pred = np.where(rng.random(200) < 0.7, y_true, (y_true + 1) % 3)
        interval = bootstrap_metric(y_true, y_pred, accuracy, seed=1)
        assert interval.lower <= interval.estimate <= interval.upper
        assert interval.contains(interval.estimate)

    def test_wider_confidence_widens_interval(self):
        rng = np.random.default_rng(2)
        y_true = rng.integers(0, 2, 80)
        y_pred = np.where(rng.random(80) < 0.6, y_true, 1 - y_true)
        narrow = bootstrap_metric(y_true, y_pred, accuracy, confidence=0.5, seed=3)
        wide = bootstrap_metric(y_true, y_pred, accuracy, confidence=0.99, seed=3)
        assert (wide.upper - wide.lower) >= (narrow.upper - narrow.lower)

    def test_deterministic_under_seed(self):
        y_true = [0, 1, 0, 1, 1, 0]
        y_pred = [0, 1, 1, 1, 0, 0]
        a = bootstrap_metric(y_true, y_pred, accuracy, seed=7)
        b = bootstrap_metric(y_true, y_pred, accuracy, seed=7)
        assert a == b

    def test_works_with_prf_metric(self):
        y_true = [0, 1, 2, 0, 1, 2] * 5
        y_pred = [0, 1, 2, 0, 1, 1] * 5
        interval = bootstrap_metric(
            y_true, y_pred, lambda t, p: multiclass_micro_f1(t, p).f1
        )
        assert 0.0 < interval.estimate < 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            bootstrap_metric([], [], accuracy)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            bootstrap_metric([0, 1], [0], accuracy)

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError, match="confidence"):
            bootstrap_metric([0], [0], accuracy, confidence=1.5)

    @given(n=st.integers(5, 60), noise=st.floats(0, 0.5))
    @settings(max_examples=20, deadline=None)
    def test_interval_always_within_metric_bounds(self, n, noise):
        rng = np.random.default_rng(4)
        y_true = rng.integers(0, 2, n)
        y_pred = np.where(rng.random(n) < 1 - noise, y_true, 1 - y_true)
        interval = bootstrap_metric(y_true, y_pred, accuracy,
                                    num_resamples=200, seed=5)
        assert 0.0 <= interval.lower <= interval.upper <= 1.0


class TestPairedBootstrap:
    def test_clearly_better_model_is_significant(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 2, 300)
        good = np.where(rng.random(300) < 0.95, y_true, 1 - y_true)
        bad = np.where(rng.random(300) < 0.55, y_true, 1 - y_true)
        result = paired_bootstrap(y_true, good, bad, accuracy, seed=1)
        assert result.delta > 0.2
        assert result.significant
        assert result.wins > 0.99

    def test_identical_models_not_significant(self):
        rng = np.random.default_rng(1)
        y_true = rng.integers(0, 2, 100)
        pred = np.where(rng.random(100) < 0.7, y_true, 1 - y_true)
        result = paired_bootstrap(y_true, pred, pred.copy(), accuracy, seed=2)
        assert result.delta == 0.0
        assert not result.significant

    def test_symmetry_of_delta(self):
        rng = np.random.default_rng(3)
        y_true = rng.integers(0, 2, 150)
        a = np.where(rng.random(150) < 0.8, y_true, 1 - y_true)
        b = np.where(rng.random(150) < 0.7, y_true, 1 - y_true)
        ab = paired_bootstrap(y_true, a, b, accuracy, seed=4)
        ba = paired_bootstrap(y_true, b, a, accuracy, seed=4)
        assert ab.delta == pytest.approx(-ba.delta)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError, match="same shape"):
            paired_bootstrap([0, 1], [0, 1], [0], accuracy)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            paired_bootstrap([], [], [], accuracy)
