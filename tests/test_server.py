"""The asyncio socket server (repro.serving.server) and its CLI face.

The ISSUE-5 acceptance surface:

* a live TCP server over a two-model gateway serves **concurrent**
  clients routing across models with answers byte-identical to direct
  ``engine.annotate`` output, in per-connection FIFO order;
* the admin plane works against the live server: ``health``/``stats``
  introspection, hot ``register`` → annotate → ``unregister`` without a
  restart, ``repoint`` swapping a name's weights mid-session, and
  ``{"op": "shutdown"}`` draining the server gracefully;
* errors (broken JSON, zero-column tables, unknown routes) are answers
  on the offending connection, never a dead server;
* `repro serve --listen` wires the same thing up end-to-end, and
  `repro stats` reads it back.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.core import Doduo, DoduoConfig, DoduoTrainer, save_annotator
from repro.datasets import generate_wikitable_dataset
from repro.io import table_to_dict
from repro.nn import TransformerConfig
from repro.serving import (
    AnnotationEngine,
    AnnotationGateway,
    AnnotationOptions,
    ModelRegistry,
    QueueConfig,
)
from repro.serving.server import AnnotationServer, ServerThread
from repro.text import train_wordpiece


def _make_trainer(seed: int) -> DoduoTrainer:
    dataset = generate_wikitable_dataset(num_tables=14, seed=seed, max_rows=3)
    tokenizer = train_wordpiece(dataset.all_cell_text(), vocab_size=500)
    encoder_config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        hidden_dim=16,
        num_layers=1,
        num_heads=2,
        ffn_dim=32,
        max_position=160,
        num_segments=8,
        dropout=0.0,
    )
    config = DoduoConfig(epochs=1, batch_size=4, keep_best_checkpoint=False)
    trainer = DoduoTrainer(dataset, tokenizer, encoder_config, config)
    trainer.train()
    return trainer


@pytest.fixture(scope="module")
def trainer_a():
    return _make_trainer(61)


@pytest.fixture(scope="module")
def trainer_b():
    return _make_trainer(73)


@pytest.fixture(scope="module")
def bundles(trainer_a, trainer_b, tmp_path_factory):
    root = tmp_path_factory.mktemp("server-bundles")
    save_annotator(Doduo(trainer_a), root / "a")
    save_annotator(Doduo(trainer_b), root / "b")
    return {"a": root / "a", "b": root / "b"}


def _expected(trainer, table, options=None, with_embeddings=False):
    """The direct single-engine answer, JSON-round-tripped like the wire."""
    from repro.serving import AnnotationRequest

    engine = AnnotationEngine(trainer)
    if options is None:
        result = engine.annotate(table)
    else:
        request = AnnotationRequest(table=table, options=options)
        result = engine.annotate_batch([request])[0]
    return json.loads(json.dumps(result.to_dict(with_embeddings=with_embeddings)))


class Client:
    """A minimal newline-delimited JSON protocol client."""

    def __init__(self, address, timeout=60.0):
        self.sock = socket.create_connection(address, timeout=timeout)
        self.stream = self.sock.makefile("rw", encoding="utf-8", newline="\n")

    def send(self, record) -> None:
        if isinstance(record, str):
            self.stream.write(record if record.endswith("\n") else record + "\n")
        else:
            self.stream.write(json.dumps(record) + "\n")
        self.stream.flush()

    def recv(self):
        line = self.stream.readline()
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    def ask(self, record):
        self.send(record)
        return self.recv()

    def close(self) -> None:
        self.stream.close()
        self.sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _routed_record(table, model=None, record_id=None):
    record = table_to_dict(table)
    if model is not None:
        record["model"] = model
    if record_id is not None:
        record["id"] = record_id
    return record


def _two_model_gateway(trainer_a, trainer_b):
    registry = ModelRegistry()
    registry.register("a", trainer_a)
    registry.register("b", trainer_b)
    return AnnotationGateway(registry, QueueConfig(max_batch=8, max_latency=0.02))


@pytest.mark.smoke
class TestSocketServing:
    def test_single_client_routes_byte_identical(self, trainer_a, trainer_b):
        tables = trainer_a.dataset.tables[:4]
        gateway = _two_model_gateway(trainer_a, trainer_b)
        with gateway, ServerThread(gateway) as address, Client(address) as client:
            for i, table in enumerate(tables):
                client.send(_routed_record(table, model="a", record_id=2 * i))
                client.send(_routed_record(table, model="b", record_id=2 * i + 1))
            answers = [client.recv() for _ in range(2 * len(tables))]
        # Per-connection FIFO: ids come back in submission order.
        assert [a["id"] for a in answers] == list(range(2 * len(tables)))
        for i, table in enumerate(tables):
            want_a = _expected(trainer_a, table)
            want_b = _expected(trainer_b, table)
            got_a, got_b = dict(answers[2 * i]), dict(answers[2 * i + 1])
            assert got_a.pop("id") == 2 * i
            assert got_b.pop("id") == 2 * i + 1
            assert got_a == want_a
            assert got_b == want_b
        # Different weights genuinely answered each route.
        assert answers[0]["columns"] != answers[1]["columns"] or (
            answers[0]["columns"][0]["type_scores"]
            != answers[1]["columns"][0]["type_scores"]
        )

    def test_concurrent_clients_interleaved_routing(self, trainer_a, trainer_b):
        """The acceptance bar: >= 2 concurrent clients, >= 2 models,
        interleaved routes, every answer byte-identical and in FIFO
        order per connection."""
        tables = trainer_a.dataset.tables[:4]
        gateway = _two_model_gateway(trainer_a, trainer_b)
        outcomes = {}

        def run_client(client_index, address):
            routes = ["a", "b"] if client_index % 2 == 0 else ["b", "a"]
            with Client(address) as client:
                sent = []
                for i, table in enumerate(tables):
                    route = routes[i % 2]
                    record_id = f"c{client_index}-{i}"
                    client.send(_routed_record(table, model=route, record_id=record_id))
                    sent.append((record_id, route, table))
                answers = [client.recv() for _ in sent]
            outcomes[client_index] = (sent, answers)

        with gateway, ServerThread(gateway) as address:
            threads = [
                threading.Thread(target=run_client, args=(i, address))
                for i in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        trainers = {"a": trainer_a, "b": trainer_b}
        assert len(outcomes) == 3
        for client_index, (sent, answers) in outcomes.items():
            assert [a["id"] for a in answers] == [rid for rid, _, _ in sent]
            for (record_id, route, table), answer in zip(sent, answers):
                got = dict(answer)
                got.pop("id")
                assert got == _expected(trainers[route], table), (
                    f"client {client_index} record {record_id} diverged"
                )

    def test_errors_are_answers_and_connection_survives(self, trainer_a):
        gateway = AnnotationGateway.for_engine(AnnotationEngine(trainer_a))
        table = trainer_a.dataset.tables[0]
        with gateway, ServerThread(gateway) as address, Client(address) as client:
            assert "error" in client.ask("this is not json")
            bad_table = client.ask({"kind": "table", "table_id": "e",
                                    "columns": [], "id": 1})
            assert "no columns" in bad_table["error"]
            assert bad_table["id"] == 1
            unknown = client.ask(_routed_record(table, model="nope", record_id=2))
            assert "no model registered" in unknown["error"]
            assert unknown["table_id"] == table.table_id
            assert unknown["id"] == 2
            good = client.ask(_routed_record(table))
            assert good["columns"]  # still serving after three bad records

    def test_embeddings_toggle(self, trainer_a):
        gateway = AnnotationGateway.for_engine(AnnotationEngine(trainer_a))
        table = trainer_a.dataset.tables[0]
        with gateway, ServerThread(gateway, with_embeddings=True) as address:
            with Client(address) as client:
                answer = client.ask(table_to_dict(table))
        assert answer == _expected(trainer_a, table, with_embeddings=True)
        assert "embedding" in answer["columns"][0]

    def test_options_apply_server_side(self, trainer_a):
        gateway = AnnotationGateway.for_engine(AnnotationEngine(trainer_a))
        options = AnnotationOptions(top_k=1)
        table = trainer_a.dataset.tables[0]
        with gateway, ServerThread(gateway, options) as address:
            with Client(address) as client:
                answer = client.ask(table_to_dict(table))
        assert answer == _expected(trainer_a, table, options=options)
        assert all(len(c["type_scores"]) == 1 for c in answer["columns"])


@pytest.mark.smoke
class TestServerThreadPort:
    def test_port_property_reports_ephemeral_bind(self, trainer_a, trainer_b):
        gateway = _two_model_gateway(trainer_a, trainer_b)
        server = ServerThread(gateway)  # port=0: ephemeral
        with pytest.raises(RuntimeError):
            server.port  # not started yet
        with gateway:
            host, port = server.start()
            try:
                assert server.port == port > 0
                # The reported port is genuinely reachable.
                with Client((host, server.port)) as client:
                    answer = client.ask({"op": "health"})
                    assert answer["ok"]
            finally:
                server.stop()


class TestAdminPlaneLive:
    def test_health_stats_register_repoint_unregister(
        self, trainer_a, trainer_b, bundles
    ):
        gateway = _two_model_gateway(trainer_a, trainer_b)
        table = trainer_a.dataset.tables[0]
        with gateway, ServerThread(gateway) as address, Client(address) as client:
            health = client.ask({"op": "health", "id": "h1"})
            assert health["ok"] and health["models"] == ["a", "b"]
            assert health["default"] == "a"
            assert health["id"] == "h1"

            # Hot-register a checkpoint under a new name and route to it,
            # all on the live connection — no restart.
            ok = client.ask({"op": "register", "name": "hot",
                             "path": str(bundles["a"])})
            assert ok == {"ok": True, "op": "register", "name": "hot"}
            via_hot = client.ask(_routed_record(table, model="hot"))
            assert dict(via_hot) == _expected(trainer_a, table)

            # Repoint the same name at different weights: next answer is
            # the other model's, byte-identically.
            assert client.ask({"op": "repoint", "name": "hot",
                               "path": str(bundles["b"])})["ok"] is True
            via_repointed = client.ask(_routed_record(table, model="hot"))
            assert dict(via_repointed) == _expected(trainer_b, table)

            stats = client.ask({"op": "stats"})
            assert stats["ok"] is True
            assert stats["registry"]["repoints"] == 1
            assert "hot" in stats["gateway"]["models"]

            # Unregister: the route is gone, the server keeps serving.
            assert client.ask({"op": "unregister", "name": "hot"})["ok"] is True
            gone = client.ask(_routed_record(table, model="hot"))
            assert "no model registered" in gone["error"]
            still = client.ask(_routed_record(table, model="a"))
            assert still["columns"]

    def test_admin_disabled_server_refuses_ops(self, trainer_a):
        gateway = AnnotationGateway.for_engine(AnnotationEngine(trainer_a))
        table = trainer_a.dataset.tables[0]
        with gateway, ServerThread(gateway, admin=False) as address:
            with Client(address) as client:
                refused = client.ask({"op": "stats"})
                assert "not allowed" in refused["error"]
                assert client.ask(table_to_dict(table))["columns"]

    def test_shutdown_op_drains_and_stops(self, trainer_a):
        gateway = AnnotationGateway.for_engine(AnnotationEngine(trainer_a))
        table = trainer_a.dataset.tables[0]
        server = ServerThread(gateway)
        with gateway:
            address = server.start()
            with Client(address) as client:
                assert client.ask(table_to_dict(table))["columns"]
                assert client.ask({"op": "shutdown"}) == {
                    "ok": True, "op": "shutdown",
                }
            server.stop()  # joins the already-stopping thread
            with pytest.raises(OSError):
                socket.create_connection(address, timeout=0.5)


@pytest.mark.smoke
class TestCliListen:
    @staticmethod
    def _best_effort_shutdown(address):
        """Ask the server to stop; swallow errors (it may be down already)."""
        try:
            with Client(address, timeout=5.0) as client:
                client.ask({"op": "shutdown"})
        except OSError:
            pass

    def _start_cli(self, argv, monkeypatch):
        """Run `repro serve --listen ...` on a thread; return (thread,
        result holder, bound address) once the listener is up."""
        import io

        from repro.cli import main

        stderr = io.StringIO()
        monkeypatch.setattr("sys.stderr", stderr)
        outcome = {}

        def run():
            outcome["code"] = main(argv)

        # Daemon: a failing assertion must not leave a live server thread
        # blocking interpreter exit.
        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        deadline = time.time() + 60
        address = None
        while time.time() < deadline:
            text = stderr.getvalue()
            if "listening on " in text:
                host, _, port = (
                    text.split("listening on ", 1)[1].split("\n", 1)[0]
                    .strip().rpartition(":")
                )
                address = (host, int(port))
                break
            if not thread.is_alive():
                break
            time.sleep(0.02)
        assert address is not None, f"server never came up: {stderr.getvalue()}"
        return thread, outcome, address, stderr

    def test_listen_end_to_end(self, bundles, trainer_a, trainer_b, monkeypatch):
        """`repro serve --listen` — concurrent clients, two models, hot
        register/unregister, graceful client-initiated shutdown."""
        thread, outcome, address, stderr = self._start_cli(
            [
                "serve",
                "--model", f"a={bundles['a']}",
                "--model", f"b={bundles['b']}",
                "--listen", "127.0.0.1:0",
            ],
            monkeypatch,
        )
        # `repro serve` answers with the CLI's default options
        # (embeddings off on the wire AND in the request).
        cli_options = AnnotationOptions(with_embeddings=False, top_k=3)
        try:
            tables = trainer_a.dataset.tables[:3]
            trainers = {"a": trainer_a, "b": trainer_b}
            outcomes = {}

            def run_client(index):
                route = "a" if index % 2 == 0 else "b"
                with Client(address) as client:
                    answers = []
                    for i, table in enumerate(tables):
                        answers.append(
                            (route, table,
                             client.ask(_routed_record(table, model=route,
                                                       record_id=i)))
                        )
                outcomes[index] = answers

            clients = [
                threading.Thread(target=run_client, args=(i,)) for i in range(2)
            ]
            for c in clients:
                c.start()
            for c in clients:
                c.join()
            assert len(outcomes) == 2
            for answers in outcomes.values():
                for expected_id, (route, table, answer) in enumerate(answers):
                    got = dict(answer)
                    assert got.pop("id") == expected_id
                    assert got == _expected(trainers[route], table,
                                            options=cli_options)

            # Admin against the CLI-started server: register -> annotate
            # -> unregister without restart.
            with Client(address) as admin:
                assert admin.ask({"op": "register", "name": "extra",
                                  "path": str(bundles["a"])})["ok"] is True
                routed = admin.ask(_routed_record(tables[0], model="extra"))
                assert dict(routed) == _expected(trainer_a, tables[0],
                                                 options=cli_options)
                assert admin.ask({"op": "unregister", "name": "extra"})["ok"] is True
                assert admin.ask({"op": "shutdown"})["ok"] is True
        finally:
            self._best_effort_shutdown(address)
            thread.join(timeout=60)
        assert not thread.is_alive()
        assert outcome["code"] == 0
        assert "served" in stderr.getvalue()

    def test_repro_stats_client(self, bundles, trainer_a, monkeypatch, capsys):
        from repro.cli import main

        thread, outcome, address, _ = self._start_cli(
            ["serve", str(bundles["a"]), "--listen", "127.0.0.1:0"],
            monkeypatch,
        )
        try:
            with Client(address) as client:
                assert client.ask(table_to_dict(trainer_a.dataset.tables[0]))[
                    "columns"
                ]
            assert main(["stats", f"{address[0]}:{address[1]}"]) == 0
            printed = json.loads(capsys.readouterr().out)
            assert printed["ok"] is True
            assert printed["gateway"]["completed"] == 1
            assert printed["registry"]["registered"] == 1
            with Client(address) as client:
                assert client.ask({"op": "shutdown"})["ok"] is True
        finally:
            self._best_effort_shutdown(address)
            thread.join(timeout=60)
        assert outcome["code"] == 0

    def test_stats_non_json_answer_errors_cleanly(self, capsys):
        """`repro stats` against something that is not a protocol server
        (or a server torn mid-write) exits 1, not with a traceback."""
        from repro.cli import main

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()[:2]

        def garbage_server():
            conn, _ = listener.accept()
            conn.recv(4096)
            conn.sendall(b"HTTP/1.1 400 Bad Request\r\n")
            conn.close()

        thread = threading.Thread(target=garbage_server, daemon=True)
        thread.start()
        try:
            assert main(["stats", f"{host}:{port}"]) == 1
            assert "non-JSON" in capsys.readouterr().err
        finally:
            listener.close()
            thread.join(timeout=10)

    def test_stats_unreachable_address_errors(self, capsys):
        from repro.cli import main

        # A port from the ephemeral range with (almost certainly) no
        # listener; connection is refused immediately.
        assert main(["stats", "127.0.0.1:1", "--timeout", "2"]) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_listen_rejects_corpus_argument(self, bundles, capsys):
        from repro.cli import main

        code = main([
            "serve", str(bundles["a"]), "corpus.jsonl",
            "--listen", "127.0.0.1:0",
        ])
        assert code == 1
        assert "drop the corpus" in capsys.readouterr().err

    def test_bad_listen_spec_errors(self, bundles, capsys):
        from repro.cli import main

        assert main(["serve", str(bundles["a"]), "--listen", "nope"]) == 1
        assert "HOST:PORT" in capsys.readouterr().err


@pytest.mark.smoke
class TestGracefulStop:
    def test_stop_drains_accepted_requests(self, trainer_a):
        """Requests accepted before stop() still get their answers."""
        import asyncio

        gateway = AnnotationGateway.for_engine(
            AnnotationEngine(trainer_a),
            queue_config=QueueConfig(max_batch=4, max_latency=0.05),
        )
        tables = trainer_a.dataset.tables[:4]

        async def run():
            server = AnnotationServer(gateway)
            await server.start()
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            for i, table in enumerate(tables):
                writer.write(
                    (json.dumps(_routed_record(table, record_id=i)) + "\n")
                    .encode()
                )
            await writer.drain()
            # Give the reader a beat to ACCEPT the records, then stop
            # while annotations are still in flight.
            while server.stats.requests < len(tables):
                await asyncio.sleep(0.005)
            await server.stop()
            lines = []
            while True:
                line = await reader.readline()
                if not line:
                    break
                lines.append(json.loads(line))
            writer.close()
            return lines

        with gateway:
            answers = asyncio.run(run())
        assert [a["id"] for a in answers] == list(range(len(tables)))
        for table, answer in zip(tables, answers):
            got = dict(answer)
            got.pop("id")
            assert got == _expected(trainer_a, table)

    def test_stop_returns_with_an_idle_open_client(self, trainer_a):
        """stop() must not wait on clients that are merely connected.
        (Regression: Python >= 3.12.1 makes Server.wait_closed() wait for
        every connection handler, so awaiting it before cancelling the
        readers deadlocks on any open connection.)"""
        import asyncio

        gateway = AnnotationGateway.for_engine(AnnotationEngine(trainer_a))

        async def run():
            server = AnnotationServer(gateway, shutdown_grace=2.0)
            await server.start()
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            await asyncio.sleep(0.05)   # connected, idle, sends nothing
            await asyncio.wait_for(server.stop(), timeout=10)
            writer.close()
            # A stopped server cannot silently "restart" unbound.
            with pytest.raises(RuntimeError, match="stopped"):
                await server.start()

        with gateway:
            asyncio.run(run())

    def test_stop_does_not_hang_on_a_stalled_client(self, trainer_a):
        """A client that pipelines requests and never reads its socket
        fills its TCP buffer; stop() must abort it after shutdown_grace
        instead of hanging on the blocked drain() forever."""
        gateway = AnnotationGateway.for_engine(
            AnnotationEngine(trainer_a),
            queue_config=QueueConfig(max_batch=8, max_latency=0.005),
        )
        tables = trainer_a.dataset.tables[:2]
        server = ServerThread(gateway, with_embeddings=True, shutdown_grace=0.5)
        with gateway:
            host, port = server.start()
            # A tiny receive buffer + a flood of duplicate records (cheap
            # to answer: dedup + ~4 KB embedding payloads, ~6 MB total)
            # overflows kernel TCP autotuning (tcp_wmem max 4 MB) and the
            # transport's high-water mark, so drain() genuinely blocks.
            stalled = socket.socket()
            stalled.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 2048)
            stalled.connect((host, port))
            stalled.settimeout(30)
            payload = b"".join(
                (json.dumps(_routed_record(t)) + "\n").encode()
                for t in tables for _ in range(750)
            )
            try:
                stalled.sendall(payload)
            except socket.timeout:
                pass  # every buffer is full — exactly the stall we want
            # Wait until answers are flowing, then stop without reading.
            deadline = time.time() + 30
            while server.server.stats.answered == 0 and time.time() < deadline:
                time.sleep(0.01)
            start = time.time()
            server.stop()
            elapsed = time.time() - start
            stalled.close()
        assert elapsed < 15, f"stop() took {elapsed:.1f}s against a stalled client"

    def test_result_embeddings_identical_over_wire(self, trainer_a):
        """Embedding floats survive the socket JSON round trip with the
        same 6-digit rendering the corpus serving mode writes."""
        gateway = AnnotationGateway.for_engine(AnnotationEngine(trainer_a))
        table = trainer_a.dataset.tables[1]
        with gateway, ServerThread(gateway, with_embeddings=True) as address:
            with Client(address) as client:
                answer = client.ask(table_to_dict(table))
        direct = AnnotationEngine(trainer_a).annotate(table)
        want = [
            [round(float(v), 6) for v in direct.colemb[c]]
            for c in range(direct.colemb.shape[0])
        ]
        got = [c["embedding"] for c in answer["columns"]]
        assert np.array_equal(np.asarray(got), np.asarray(want))
