"""Guard: examples and documentation code must at least parse and import-check.

Examples are documentation that executes, and the markdown docs
(``README.md``, ``docs/*.md``) carry Python code fences that readers will
paste; a stale API reference in either is a bug.  Full runs are exercised
manually (they train models); here we compile each example file and every
```python fence, and verify that every ``from repro...`` import they
declare resolves against the installed package — so docs cannot silently
rot as the API evolves.
"""

import ast
import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))
DOCS = sorted(
    [ROOT / "README.md", ROOT / "benchmarks" / "README.md"]
    + list((ROOT / "docs").glob("*.md"))
)

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_fences(path):
    """Every ```python code fence in a markdown file, with its offset."""
    text = path.read_text()
    return [
        (text[: match.start()].count("\n") + 2, match.group(1))
        for match in _FENCE.finditer(text)
    ]


def _assert_repro_imports_resolve(tree, origin):
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and (
            node.module == "repro" or node.module.startswith("repro.")
        ):
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{origin}: {node.module} has no attribute {alias.name}"
                )


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    source = path.read_text()
    compile(source, str(path), "exec")


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    _assert_repro_imports_resolve(ast.parse(path.read_text()), path.name)


@pytest.mark.parametrize("path", DOCS, ids=lambda p: str(p.relative_to(ROOT)))
def test_doc_fences_compile(path):
    for line, code in _python_fences(path):
        try:
            compile(code, f"{path}:{line}", "exec")
        except SyntaxError as error:
            raise AssertionError(
                f"{path.relative_to(ROOT)} line {line}: code fence does not "
                f"compile: {error}"
            ) from error


@pytest.mark.parametrize("path", DOCS, ids=lambda p: str(p.relative_to(ROOT)))
def test_doc_fence_imports_resolve(path):
    for line, code in _python_fences(path):
        _assert_repro_imports_resolve(
            ast.parse(code), f"{path.relative_to(ROOT)} line {line}"
        )


def test_examples_exist_and_include_quickstart():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3


def test_docs_surface_exists():
    """The repo must keep its documentation surface: README + docs/."""
    assert (ROOT / "README.md").exists()
    assert (ROOT / "docs" / "architecture.md").exists()
    assert (ROOT / "docs" / "serving.md").exists()
    # The README and the serving guide must carry runnable-looking code.
    assert _python_fences(ROOT / "README.md")
    assert _python_fences(ROOT / "docs" / "serving.md")
