"""Guard: every example script must at least parse and import-check.

Examples are documentation that executes; a stale API reference in one of
them is a bug.  Full runs are exercised manually (they train models); here
we compile each file and verify that every ``from repro...`` import it
declares resolves against the installed package.
"""

import ast
import importlib
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    source = path.read_text()
    compile(source, str(path), "exec")


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and (
            node.module == "repro" or node.module.startswith("repro.")
        ):
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module} has no attribute {alias.name}"
                )


def test_examples_exist_and_include_quickstart():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3
