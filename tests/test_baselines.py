"""Tests for the Sherlock, Sato (LDA + CRF), and TURL baselines."""

import itertools

import numpy as np
import pytest

from repro.baselines import (
    ColumnFeaturizer,
    FeatureConfig,
    HashedWordEmbeddings,
    LdaModel,
    LinearChainCRF,
    SatoConfig,
    SatoModel,
    SherlockConfig,
    SherlockModel,
    char_distribution,
    column_statistics,
    make_turl_trainer,
    paragraph_vector,
)
from repro.core import DoduoConfig
from repro.datasets import generate_viznet_dataset, generate_wikitable_dataset
from repro.nn import Tensor, TransformerConfig
from repro.text import train_wordpiece

from helpers import rng


class TestFeatures:
    def test_char_distribution_normalized(self):
        dist = char_distribution(["abc", "def"])
        assert dist.sum() == pytest.approx(1.0, rel=1e-5)

    def test_char_distribution_empty(self):
        assert char_distribution([]).sum() == 0.0

    def test_hashed_embeddings_deterministic(self):
        a = HashedWordEmbeddings(dim=16)
        b = HashedWordEmbeddings(dim=16)
        np.testing.assert_allclose(a.vector("george"), b.vector("george"))

    def test_hashed_embeddings_distinct_tokens(self):
        emb = HashedWordEmbeddings(dim=16)
        assert not np.allclose(emb.vector("george"), emb.vector("miller"))

    def test_word_feature_mean_max(self):
        emb = HashedWordEmbeddings(dim=8)
        feature = emb.column_feature(["george miller"])
        assert feature.shape == (16,)
        assert emb.column_feature([]).sum() == 0.0

    def test_paragraph_vector_unit_norm(self):
        vec = paragraph_vector(["hello world", "more text"], dim=16)
        assert np.linalg.norm(vec) == pytest.approx(1.0, rel=1e-4)

    def test_column_statistics_numeric_column(self):
        stats = column_statistics(["10", "20", "30"])
        assert stats[4] == pytest.approx(1.0)  # numeric fraction
        assert stats[8] == pytest.approx(1.0)  # uniqueness

    def test_column_statistics_empty(self):
        assert column_statistics([]).shape == (12,)

    def test_featurizer_batching(self):
        featurizer = ColumnFeaturizer()
        features = featurizer.featurize_many([["a", "b"], ["1", "2"]])
        config = FeatureConfig()
        assert features["char"].shape == (2, config.char_dim)
        assert features["word"].shape == (2, config.word_dim)
        assert features["stats"].shape == (2, config.stats_dim)


class TestSherlock:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_viznet_dataset(num_tables=80, seed=5)

    def test_fit_reduces_loss_and_predicts(self, dataset):
        model = SherlockModel(dataset, SherlockConfig(epochs=30, seed=0))
        losses = model.fit()
        assert losses[-1] < losses[0]
        prf = model.evaluate(dataset.tables[:20])
        assert prf.f1 > 0.5  # trained on these tables; should fit well

    def test_multilabel_mode(self):
        dataset = generate_wikitable_dataset(num_tables=30, seed=2)
        model = SherlockModel(dataset, SherlockConfig(epochs=10, multi_label=True))
        model.fit()
        predictions = model.predict([dataset.tables[0].columns[0].values])
        assert predictions.dtype == bool
        assert predictions.shape == (1, dataset.num_types)
        assert predictions.any()


class TestLda:
    def test_separates_two_topics(self):
        docs_a = ["apple banana fruit orange sweet"] * 10
        docs_b = ["engine wheel motor brake steel"] * 10
        lda = LdaModel(num_topics=2, iterations=30, seed=0)
        lda.fit(docs_a + docs_b)
        theta_a = lda.transform("apple banana fruit")
        theta_b = lda.transform("engine wheel motor")
        assert theta_a.argmax() != theta_b.argmax()

    def test_transform_is_distribution(self):
        lda = LdaModel(num_topics=3, iterations=10, seed=0)
        lda.fit(["a b c", "d e f", "a d"])
        theta = lda.transform("a b")
        assert theta.sum() == pytest.approx(1.0, rel=1e-5)
        assert (theta >= 0).all()

    def test_unknown_words_uniform(self):
        lda = LdaModel(num_topics=4, iterations=5, seed=0)
        lda.fit(["a b c"])
        theta = lda.transform("zzz qqq")
        np.testing.assert_allclose(theta, 0.25, atol=1e-6)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LdaModel(num_topics=2).transform("a")

    def test_invalid_topics(self):
        with pytest.raises(ValueError):
            LdaModel(num_topics=0)

    def test_top_words(self):
        lda = LdaModel(num_topics=2, iterations=20, seed=0)
        lda.fit(["apple banana"] * 5 + ["engine wheel"] * 5)
        words = lda.top_words(0, count=2)
        assert len(words) == 2


class TestCrf:
    def brute_force_best(self, unary, transitions):
        T, L = unary.shape
        best_score, best_path = -np.inf, None
        for path in itertools.product(range(L), repeat=T):
            score = sum(unary[t, path[t]] for t in range(T))
            score += sum(transitions[path[t - 1], path[t]] for t in range(1, T))
            if score > best_score:
                best_score, best_path = score, list(path)
        return best_path

    def test_viterbi_matches_brute_force(self):
        crf = LinearChainCRF(3, rng(0))
        crf.transitions.data = rng(1).standard_normal((3, 3)).astype(np.float32)
        unary = rng(2).standard_normal((4, 3))
        assert crf.viterbi(unary) == self.brute_force_best(
            unary, crf.transitions.data.astype(np.float64)
        )

    def test_log_likelihood_is_normalized(self):
        """Sum over all label sequences of exp(loglik) must be 1."""
        crf = LinearChainCRF(2, rng(0))
        crf.transitions.data = rng(1).standard_normal((2, 2)).astype(np.float32)
        unary_data = rng(2).standard_normal((3, 2)).astype(np.float32)
        total = 0.0
        for path in itertools.product(range(2), repeat=3):
            ll = crf.log_likelihood(Tensor(unary_data), np.array(path))
            total += np.exp(ll.item())
        assert total == pytest.approx(1.0, rel=1e-3)

    def test_training_increases_likelihood(self):
        crf = LinearChainCRF(3, rng(0))
        unary = Tensor(np.zeros((4, 3), dtype=np.float32), requires_grad=True)
        labels = np.array([0, 1, 2, 0])
        from repro.nn import Adam

        optimizer = Adam([unary, crf.transitions], lr=0.1)
        first = crf.negative_log_likelihood(unary, labels).item()
        for _ in range(30):
            loss = crf.negative_log_likelihood(unary, labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert crf.negative_log_likelihood(unary, labels).item() < first
        assert crf.viterbi(unary.data) == labels.tolist()

    def test_marginals_sum_to_one(self):
        crf = LinearChainCRF(3, rng(0))
        marginals = crf.marginal_probabilities(rng(1).standard_normal((5, 3)))
        np.testing.assert_allclose(marginals.sum(axis=1), 1.0, rtol=1e-5)

    def test_single_position_sequence(self):
        crf = LinearChainCRF(4, rng(0))
        unary = np.array([[0.0, 5.0, 0.0, 0.0]])
        assert crf.viterbi(unary) == [1]

    def test_empty_sequence_raises(self):
        crf = LinearChainCRF(2, rng(0))
        with pytest.raises(ValueError):
            crf.log_likelihood(Tensor(np.zeros((0, 2), dtype=np.float32)), np.array([]))


class TestSato:
    def test_fit_and_structured_predict(self):
        dataset = generate_viznet_dataset(num_tables=60, seed=9)
        model = SatoModel(dataset, SatoConfig(epochs=10, num_topics=6, lda_iterations=10))
        losses = model.fit()
        assert losses[-1] < losses[0]
        predictions = model.predict(dataset.tables[:5])
        for table, pred in zip(dataset.tables[:5], predictions):
            assert len(pred) == table.num_columns
            assert all(0 <= p < dataset.num_types for p in pred)

    def test_evaluate_on_training_data_fits(self):
        dataset = generate_viznet_dataset(num_tables=60, seed=9)
        model = SatoModel(dataset, SatoConfig(epochs=20, num_topics=6, lda_iterations=10))
        model.fit()
        assert model.evaluate(dataset.tables[:20]).f1 > 0.6


class TestTurl:
    def test_turl_trainer_uses_visibility(self):
        dataset = generate_wikitable_dataset(num_tables=20, seed=2, max_rows=4)
        tokenizer = train_wordpiece(dataset.all_cell_text(), vocab_size=800)
        encoder_config = TransformerConfig(
            vocab_size=tokenizer.vocab_size, hidden_dim=32, num_layers=1,
            num_heads=2, ffn_dim=64, max_position=128, num_segments=8, dropout=0.0,
        )
        trainer = make_turl_trainer(
            dataset, tokenizer, encoder_config,
            DoduoConfig(epochs=1, keep_best_checkpoint=False),
        )
        assert trainer.config.use_visibility_matrix
        assert trainer.model.use_visibility_matrix
        trainer.train()
        assert trainer.history.task_losses
