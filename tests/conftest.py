"""Test configuration: shared helpers on sys.path plus session fixtures."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture(scope="session")
def shared_tiny_annotator():
    """A Doduo annotator fine-tuned for a few epochs on a tiny WikiTable.

    Session-scoped because several test modules (wide tables, CLI, examples)
    only need *a* trained annotator, not a good one; sharing one keeps the
    suite fast.
    """
    from repro.core import Doduo, DoduoConfig, DoduoTrainer
    from repro.datasets import generate_wikitable_dataset
    from repro.nn import TransformerConfig
    from repro.text import train_wordpiece

    dataset = generate_wikitable_dataset(num_tables=30, seed=17, max_rows=4)
    tokenizer = train_wordpiece(dataset.all_cell_text(), vocab_size=800)
    encoder_config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        hidden_dim=32,
        num_layers=2,
        num_heads=2,
        ffn_dim=64,
        max_position=160,
        num_segments=8,
        dropout=0.0,
    )
    config = DoduoConfig(epochs=2, batch_size=8, learning_rate=2e-3,
                         keep_best_checkpoint=False)
    trainer = DoduoTrainer(dataset, tokenizer, encoder_config, config)
    trainer.train()
    return Doduo(trainer)
