"""Unit and property-based tests for the autograd tensor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, concatenate, stack, where

from helpers import gradcheck, numerical_gradient, rng


class TestBasicOps:
    def test_add_values(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0, 4.0])
        np.testing.assert_allclose((a + b).data, [4.0, 6.0])

    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_add_broadcast_backward(self):
        a = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])

    def test_scalar_broadcast(self):
        a = Tensor(np.full((2, 2), 3.0, dtype=np.float32), requires_grad=True)
        out = (a * 2.0 + 1.0).sum()
        out.backward()
        assert out.item() == pytest.approx(28.0)
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 7.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_sub_and_neg(self):
        a = Tensor([5.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a - b).backward()
        assert a.grad[0] == 1.0
        assert b.grad[0] == -1.0

    def test_rsub(self):
        a = Tensor([2.0], requires_grad=True)
        out = 10.0 - a
        np.testing.assert_allclose(out.data, [8.0])

    def test_div_backward(self):
        gradcheck(lambda x: x / Tensor(np.array([2.0, 4.0], dtype=np.float32)), np.array([1.0, 3.0]))

    def test_div_denominator_grad(self):
        b = Tensor([2.0], requires_grad=True)
        (Tensor([8.0]) / b).backward()
        assert b.grad[0] == pytest.approx(-2.0)

    def test_pow(self):
        gradcheck(lambda x: x ** 3, np.array([1.0, 2.0, -1.5]))

    def test_matmul_values(self):
        a = Tensor(np.array([[1.0, 2.0]], dtype=np.float32))
        b = Tensor(np.array([[3.0], [4.0]], dtype=np.float32))
        np.testing.assert_allclose((a @ b).data, [[11.0]])

    def test_matmul_backward(self):
        a_data = rng(1).standard_normal((3, 4)).astype(np.float32)
        b = Tensor(rng(2).standard_normal((4, 2)).astype(np.float32))
        gradcheck(lambda x: x @ b, a_data)

    def test_batched_matmul_backward(self):
        b = Tensor(rng(3).standard_normal((2, 4, 3)).astype(np.float32))
        a_data = rng(4).standard_normal((2, 5, 4)).astype(np.float32)
        gradcheck(lambda x: x @ b, a_data)


class TestElementwise:
    @pytest.mark.parametrize("name", ["exp", "tanh", "sigmoid", "relu"])
    def test_gradcheck(self, name):
        data = rng(7).uniform(-2, 2, size=(3, 4))
        # keep relu away from its kink
        data[np.abs(data) < 0.1] = 0.5
        gradcheck(lambda x: getattr(x, name)(), data)

    def test_log_gradcheck(self):
        gradcheck(lambda x: x.log(), rng(8).uniform(0.5, 3.0, size=(4,)))

    def test_sqrt(self):
        t = Tensor([4.0, 9.0])
        np.testing.assert_allclose(t.sqrt().data, [2.0, 3.0], rtol=1e-5)


class TestReductions:
    def test_sum_axis(self):
        t = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3), requires_grad=True)
        out = t.sum(axis=0)
        np.testing.assert_allclose(out.data, [3.0, 5.0, 7.0])
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 3)))

    def test_sum_keepdims(self):
        t = Tensor(np.ones((2, 3), dtype=np.float32))
        assert t.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean(self):
        t = Tensor(np.array([[2.0, 4.0]], dtype=np.float32), requires_grad=True)
        t.mean().backward()
        np.testing.assert_allclose(t.grad, [[0.5, 0.5]])

    def test_var(self):
        data = rng(9).standard_normal((5,)).astype(np.float32)
        t = Tensor(data)
        assert t.var().item() == pytest.approx(float(np.var(data)), rel=1e-4)


class TestShapes:
    def test_reshape_roundtrip(self):
        gradcheck(lambda x: x.reshape(6), rng(10).standard_normal((2, 3)))

    def test_transpose(self):
        gradcheck(lambda x: x.transpose(1, 0), rng(11).standard_normal((2, 3)))

    def test_transpose_default_reverses(self):
        t = Tensor(np.zeros((2, 3, 4), dtype=np.float32))
        assert t.transpose().shape == (4, 3, 2)

    def test_swapaxes(self):
        gradcheck(lambda x: x.swapaxes(0, 1), rng(12).standard_normal((2, 3)))

    def test_getitem_slice(self):
        t = Tensor(np.arange(10, dtype=np.float32), requires_grad=True)
        t[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_getitem_fancy_repeated_index_accumulates(self):
        t = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        idx = np.array([0, 0, 2])
        t[idx].sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 0.0, 1.0, 0.0])

    def test_getitem_tuple_index(self):
        t = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4), requires_grad=True)
        rows = np.array([0, 2])
        cols = np.array([1, 3])
        picked = t[(rows, cols)]
        np.testing.assert_allclose(picked.data, [1.0, 11.0])
        picked.sum().backward()
        assert t.grad[0, 1] == 1.0 and t.grad[2, 3] == 1.0
        assert t.grad.sum() == 2.0


class TestCombinators:
    def test_concatenate_backward(self):
        a = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        out = concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 3), 2.0))

    def test_stack(self):
        a = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        b = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))

    def test_where(self):
        cond = np.array([True, False, True])
        a = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        b = Tensor(np.full(3, 5.0, dtype=np.float32), requires_grad=True)
        out = where(cond, a, b)
        np.testing.assert_allclose(out.data, [1.0, 5.0, 1.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])


class TestBackwardMechanics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_grad_accumulates_across_uses(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0 + x * 4.0  # x used twice
        y.backward()
        assert x.grad[0] == pytest.approx(7.0)

    def test_diamond_graph(self):
        x = Tensor([1.0], requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        (a * b).backward()  # d/dx 6x^2 = 12x
        assert x.grad[0] == pytest.approx(12.0)

    def test_detach_stops_gradient(self):
        x = Tensor([2.0], requires_grad=True)
        y = x.detach() * 5.0
        assert not y.requires_grad

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(500):
            y = y + 1.0
        y.backward()
        assert x.grad[0] == 1.0


@settings(max_examples=25, deadline=None)
@given(
    shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
    seed=st.integers(0, 1000),
)
def test_property_add_mul_grads(shape, seed):
    """For z = sum(a*b + a), dz/da = b + 1 and dz/db = a."""
    generator = np.random.default_rng(seed)
    a = Tensor(generator.standard_normal(shape).astype(np.float32), requires_grad=True)
    b = Tensor(generator.standard_normal(shape).astype(np.float32), requires_grad=True)
    (a * b + a).sum().backward()
    np.testing.assert_allclose(a.grad, b.data + 1.0, rtol=1e-4, atol=1e-5)
    np.testing.assert_allclose(b.grad, a.data, rtol=1e-4, atol=1e-5)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000))
def test_property_sum_then_broadcast_grad_is_ones(seed):
    generator = np.random.default_rng(seed)
    shape = (int(generator.integers(1, 5)), int(generator.integers(1, 5)))
    x = Tensor(generator.standard_normal(shape).astype(np.float32), requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones(shape))
