"""Tests for masked-LM pre-training and pseudo-perplexity scoring."""

import numpy as np
import pytest

from repro.nn import TransformerConfig
from repro.pretrain import (
    IGNORE_INDEX,
    MaskedLanguageModel,
    mask_tokens,
    pack_sentences,
    pretrain_mlm,
    sentence_pseudo_perplexity,
)
from repro.text import train_wordpiece

from helpers import rng

CORPUS = [
    "george miller directed happy feet",
    "happy feet is a film",
    "judy morris is a director",
    "cars is a film",
    "darla anderson produced cars",
    "george miller is a director",
] * 4


@pytest.fixture(scope="module")
def tokenizer():
    return train_wordpiece(CORPUS, vocab_size=400)


@pytest.fixture(scope="module")
def config(tokenizer):
    return TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        hidden_dim=32,
        num_layers=2,
        num_heads=2,
        ffn_dim=64,
        max_position=64,
        dropout=0.0,
    )


class TestMaskTokens:
    def test_labels_only_at_masked_positions(self, tokenizer):
        ids = np.array([tokenizer.encode("george miller directed happy feet")])
        masked, labels = mask_tokens(ids, tokenizer, rng(0), mask_prob=0.5)
        changed = labels != IGNORE_INDEX
        # labels hold the original ids at selected positions
        np.testing.assert_array_equal(labels[changed], ids[changed])
        # unselected positions are untouched
        np.testing.assert_array_equal(masked[~changed], ids[~changed])

    def test_specials_never_masked(self, tokenizer):
        vocab = tokenizer.vocab
        ids = np.array([[vocab.cls_id, vocab.token_to_id("george"), vocab.sep_id]])
        for seed in range(20):
            _, labels = mask_tokens(ids, tokenizer, rng(seed), mask_prob=1.0)
            assert labels[0, 0] == IGNORE_INDEX
            assert labels[0, 2] == IGNORE_INDEX

    def test_at_least_one_position_masked(self, tokenizer):
        ids = np.array([tokenizer.encode("george")])
        _, labels = mask_tokens(ids, tokenizer, rng(0), mask_prob=0.0)
        assert (labels != IGNORE_INDEX).sum() >= 1

    def test_8020_split_roughly_holds(self, tokenizer):
        ids = np.array([tokenizer.encode("george miller directed happy feet " * 50)])
        masked, labels = mask_tokens(ids, tokenizer, rng(1), mask_prob=0.5)
        selected = labels != IGNORE_INDEX
        mask_id = tokenizer.vocab.mask_id
        frac_mask = (masked[selected] == mask_id).mean()
        assert 0.6 < frac_mask < 0.95


class TestPackSentences:
    def test_examples_start_with_cls(self, tokenizer):
        examples = pack_sentences(CORPUS, tokenizer, max_len=32)
        cls_id = tokenizer.vocab.cls_id
        assert all(e[0] == cls_id for e in examples)

    def test_respects_max_len(self, tokenizer):
        examples = pack_sentences(CORPUS, tokenizer, max_len=24)
        assert all(len(e) <= 24 for e in examples)

    def test_packs_multiple_sentences(self, tokenizer):
        examples = pack_sentences(CORPUS, tokenizer, max_len=64)
        sep_id = tokenizer.vocab.sep_id
        # at least one packed example has several [SEP]s
        assert any(sum(1 for t in e if t == sep_id) >= 2 for e in examples)

    def test_all_tokens_preserved(self, tokenizer):
        examples = pack_sentences(CORPUS, tokenizer, max_len=64)
        specials = {tokenizer.vocab.cls_id, tokenizer.vocab.sep_id}
        packed = [t for e in examples for t in e if t not in specials]
        direct = [t for s in CORPUS for t in tokenizer.encode(s)]
        assert sorted(packed) == sorted(direct)


class TestPretraining:
    def test_loss_decreases(self, tokenizer, config):
        result = pretrain_mlm(
            CORPUS, tokenizer, config, epochs=4, batch_size=8, lr=2e-3, seed=0
        )
        assert result.losses[-1] < result.losses[0]

    def test_model_in_eval_mode_after(self, tokenizer, config):
        result = pretrain_mlm(CORPUS, tokenizer, config, epochs=1, seed=0)
        assert not result.model.training

    def test_deterministic(self, tokenizer, config):
        a = pretrain_mlm(CORPUS, tokenizer, config, epochs=1, seed=3)
        b = pretrain_mlm(CORPUS, tokenizer, config, epochs=1, seed=3)
        np.testing.assert_allclose(a.losses, b.losses, rtol=1e-5)

    def test_encoder_property(self, tokenizer, config):
        result = pretrain_mlm(CORPUS, tokenizer, config, epochs=1, seed=0)
        assert result.encoder is result.model.encoder

    def test_padding_report_populated(self, tokenizer, config):
        result = pretrain_mlm(CORPUS, tokenizer, config, epochs=1, seed=0)
        padding = result.padding
        assert padding.padded_tokens >= padding.real_tokens > 0
        assert padding.batches > 0

    def test_exact_batching_has_zero_waste_and_still_learns(
        self, tokenizer, config
    ):
        result = pretrain_mlm(
            CORPUS, tokenizer, config, epochs=4, batch_size=8, lr=2e-3,
            seed=0, exact_batching=True,
        )
        assert result.padding.wasted_tokens == 0
        assert result.padding.waste_ratio == 0.0
        assert result.losses[-1] < result.losses[0]
        # The default policy on the same corpus does waste slots, so the
        # exact planner is measurably tighter.
        default = pretrain_mlm(
            CORPUS, tokenizer, config, epochs=1, batch_size=8, seed=0
        )
        assert default.padding.wasted_tokens > 0


class TestPseudoPerplexity:
    def test_positive_and_finite(self, tokenizer, config):
        model = MaskedLanguageModel(config, rng(0))
        ppl = sentence_pseudo_perplexity(model, tokenizer, "george miller is a director")
        assert np.isfinite(ppl) and ppl > 0

    def test_empty_sentence_infinite(self, tokenizer, config):
        model = MaskedLanguageModel(config, rng(0))
        assert sentence_pseudo_perplexity(model, tokenizer, "") == float("inf")

    def test_training_reduces_ppl_of_corpus_sentences(self, tokenizer, config):
        untrained = MaskedLanguageModel(config, rng(0))
        trained = pretrain_mlm(
            CORPUS, tokenizer, config, epochs=6, batch_size=8, lr=2e-3, seed=0
        ).model
        sentence = "george miller is a director"
        assert sentence_pseudo_perplexity(
            trained, tokenizer, sentence
        ) < sentence_pseudo_perplexity(untrained, tokenizer, sentence)
