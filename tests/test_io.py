"""Tests for repro.io: CSV and JSONL round-trips."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    Column,
    Table,
    TableDataset,
    generate_viznet_dataset,
    generate_wikitable_dataset,
)
from repro.io import (
    load_dataset_jsonl,
    load_table_json,
    read_table_csv,
    read_tables_from_dir,
    save_dataset_jsonl,
    table_from_dict,
    table_to_dict,
    write_table_csv,
)
from repro.io.csvio import column_major


def make_table() -> Table:
    return Table(
        columns=[
            Column(values=["Happy Feet", "Cars"], type_labels=["film"], header="film"),
            Column(values=["George Miller", "John Lasseter"],
                   type_labels=["director", "person"], header="director"),
        ],
        table_id="t1",
        relation_labels={(0, 1): ["directed_by"]},
        metadata={"source": "unit-test"},
    )


class TestCsv:
    def test_write_read_roundtrip_values(self, tmp_path):
        table = make_table()
        path = tmp_path / "table.csv"
        write_table_csv(table, path)
        back = read_table_csv(path)
        assert back.num_columns == table.num_columns
        for col_in, col_out in zip(table.columns, back.columns):
            assert col_out.values == col_in.values
            assert col_out.header == col_in.header

    def test_read_without_header(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("a,b\nc,d\n")
        table = read_table_csv(path, has_header=False)
        assert table.num_rows == 2
        assert table.columns[0].header is None
        assert table.columns[0].values == ["a", "c"]

    def test_header_row_consumed(self, tmp_path):
        path = tmp_path / "hdr.csv"
        path.write_text("name,age\nalice,30\n")
        table = read_table_csv(path)
        assert table.columns[0].header == "name"
        assert table.columns[0].values == ["alice"]

    def test_table_id_defaults_to_stem(self, tmp_path):
        path = tmp_path / "sales_2021.csv"
        path.write_text("x\n1\n")
        assert read_table_csv(path).table_id == "sales_2021"

    def test_max_rows(self, tmp_path):
        path = tmp_path / "big.csv"
        path.write_text("x\n" + "\n".join(str(i) for i in range(100)) + "\n")
        table = read_table_csv(path, max_rows=5)
        assert table.num_rows == 5

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="no rows"):
            read_table_csv(path)

    def test_ragged_rows_raise(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(ValueError, match="cells"):
            read_table_csv(path)

    def test_tsv_delimiter(self, tmp_path):
        path = tmp_path / "table.tsv"
        path.write_text("a\tb\n1\t2\n")
        table = read_table_csv(path, delimiter="\t")
        assert table.columns[1].values == ["2"]

    def test_write_pads_short_columns(self, tmp_path):
        table = Table(columns=[
            Column(values=["1", "2", "3"]),
            Column(values=["x"]),
        ])
        path = tmp_path / "pad.csv"
        write_table_csv(table, path)
        back = read_table_csv(path)
        assert back.columns[1].values == ["x", "", ""]
        assert back.columns[1].header == "col1"

    def test_read_dir_sorted(self, tmp_path):
        (tmp_path / "b.csv").write_text("x\n2\n")
        (tmp_path / "a.csv").write_text("x\n1\n")
        tables = read_tables_from_dir(tmp_path)
        assert [t.table_id for t in tables] == ["a", "b"]

    def test_read_dir_rejects_file(self, tmp_path):
        path = tmp_path / "a.csv"
        path.write_text("x\n1\n")
        with pytest.raises(ValueError, match="not a directory"):
            read_tables_from_dir(path)

    def test_column_major_transpose(self):
        cols = column_major([["a", "b"], ["c", "d"]])
        assert cols == [["a", "c"], ["b", "d"]]

    def test_column_major_ragged(self):
        with pytest.raises(ValueError, match="ragged"):
            column_major([["a"], ["b", "c"]])

    def test_column_major_empty(self):
        assert column_major([]) == []


class TestTableDict:
    def test_roundtrip_preserves_annotations(self):
        table = make_table()
        back = table_from_dict(table_to_dict(table))
        assert back.table_id == table.table_id
        assert back.relation_labels == table.relation_labels
        assert back.metadata == table.metadata
        assert [c.type_labels for c in back.columns] == [
            c.type_labels for c in table.columns
        ]

    def test_dict_is_json_serializable(self):
        json.dumps(table_to_dict(make_table()))

    def test_rejects_wrong_kind(self):
        with pytest.raises(ValueError, match="not a table record"):
            table_from_dict({"kind": "dataset"})

    def test_rejects_malformed_relation_key(self):
        payload = table_to_dict(make_table())
        payload["relation_labels"] = {"zero-one": ["r"]}
        with pytest.raises(ValueError, match="malformed relation key"):
            table_from_dict(payload)


class TestJsonlDataset:
    def test_roundtrip_wikitable(self, tmp_path):
        dataset = generate_wikitable_dataset(num_tables=12, seed=3)
        path = tmp_path / "wt.jsonl"
        save_dataset_jsonl(dataset, path)
        back = load_dataset_jsonl(path)
        assert back.name == dataset.name
        assert back.type_vocab == dataset.type_vocab
        assert back.relation_vocab == dataset.relation_vocab
        assert len(back.tables) == len(dataset.tables)
        for t_in, t_out in zip(dataset.tables, back.tables):
            assert t_out.relation_labels == t_in.relation_labels
            for c_in, c_out in zip(t_in.columns, t_out.columns):
                assert c_out.values == c_in.values
                assert c_out.type_labels == c_in.type_labels

    def test_roundtrip_viznet(self, tmp_path):
        dataset = generate_viznet_dataset(num_tables=10, seed=1)
        path = tmp_path / "vz.jsonl"
        save_dataset_jsonl(dataset, path)
        back = load_dataset_jsonl(path)
        assert back.num_types == dataset.num_types
        assert back.num_relations == 0

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_dataset_jsonl(path)

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "nohdr.jsonl"
        path.write_text(json.dumps(table_to_dict(make_table())) + "\n")
        with pytest.raises(ValueError, match="dataset header"):
            load_dataset_jsonl(path)

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "v9.jsonl"
        path.write_text(json.dumps({"kind": "dataset", "version": 9}) + "\n")
        with pytest.raises(ValueError, match="version"):
            load_dataset_jsonl(path)

    def test_load_single_table_json(self, tmp_path):
        path = tmp_path / "one.json"
        path.write_text(json.dumps(table_to_dict(make_table())))
        table = load_table_json(path)
        assert table.table_id == "t1"


# Property-based: arbitrary printable cell content survives both formats.
cell_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\r\n"),
    max_size=12,
)


class TestRoundtripProperties:
    @given(values=st.lists(cell_text, min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_jsonl_roundtrip_arbitrary_cells(self, values, tmp_path_factory):
        table = Table(columns=[Column(values=values, type_labels=["t"])])
        dataset = TableDataset(tables=[table], type_vocab=["t"])
        path = tmp_path_factory.mktemp("jsonl") / "ds.jsonl"
        save_dataset_jsonl(dataset, path)
        back = load_dataset_jsonl(path)
        assert back.tables[0].columns[0].values == values

    @given(values=st.lists(cell_text, min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_csv_roundtrip_arbitrary_cells(self, values, tmp_path_factory):
        table = Table(columns=[Column(values=values)])
        path = tmp_path_factory.mktemp("csv") / "t.csv"
        write_table_csv(table, path, include_header=False)
        back = read_table_csv(path, has_header=False)
        assert back.columns[0].values == values
