"""Tests for the Transformer encoder and its masking mechanisms."""

import numpy as np
import pytest

from repro.nn import Tensor, TransformerConfig, TransformerEncoder
from repro.nn.transformer import MultiHeadSelfAttention, TransformerBlock

from helpers import rng


def tiny_config(**overrides):
    defaults = dict(
        vocab_size=50,
        hidden_dim=16,
        num_layers=2,
        num_heads=2,
        ffn_dim=32,
        max_position=32,
        dropout=0.0,
    )
    defaults.update(overrides)
    return TransformerConfig(**defaults)


class TestConfig:
    def test_head_divisibility(self):
        with pytest.raises(ValueError):
            TransformerConfig(hidden_dim=10, num_heads=3)


class TestAttention:
    def test_output_shape(self):
        config = tiny_config()
        attn = MultiHeadSelfAttention(config, rng(0))
        x = Tensor(rng(1).standard_normal((2, 5, 16)).astype(np.float32))
        assert attn(x).shape == (2, 5, 16)

    def test_attention_rows_sum_to_one(self):
        config = tiny_config()
        attn = MultiHeadSelfAttention(config, rng(0))
        x = Tensor(rng(1).standard_normal((1, 4, 16)).astype(np.float32))
        attn(x)
        weights = attn.last_attention
        assert weights.shape == (1, 2, 4, 4)
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0, rtol=1e-5)

    def test_bias_blocks_positions(self):
        config = tiny_config()
        attn = MultiHeadSelfAttention(config, rng(0))
        x = Tensor(rng(1).standard_normal((1, 4, 16)).astype(np.float32))
        bias = np.zeros((1, 1, 4, 4), dtype=np.float32)
        bias[..., 3] = -1e9  # nobody may attend to position 3
        attn(x, attention_bias=bias)
        np.testing.assert_allclose(attn.last_attention[..., 3], 0.0, atol=1e-6)


class TestEncoder:
    def test_forward_shape(self):
        encoder = TransformerEncoder(tiny_config(), rng(0))
        out = encoder(np.zeros((2, 7), dtype=np.int64))
        assert out.shape == (2, 7, 16)

    def test_rejects_bad_rank(self):
        encoder = TransformerEncoder(tiny_config(), rng(0))
        with pytest.raises(ValueError):
            encoder(np.zeros(7, dtype=np.int64))

    def test_rejects_too_long(self):
        encoder = TransformerEncoder(tiny_config(max_position=4), rng(0))
        with pytest.raises(ValueError):
            encoder(np.zeros((1, 5), dtype=np.int64))

    def test_padding_mask_makes_output_independent_of_pad_content(self):
        encoder = TransformerEncoder(tiny_config(), rng(0))
        encoder.eval()
        ids_a = np.array([[5, 6, 7, 0, 0]])
        ids_b = np.array([[5, 6, 7, 9, 9]])  # different padding content
        mask = np.array([[True, True, True, False, False]])
        out_a = encoder(ids_a, attention_mask=mask).data[:, :3]
        out_b = encoder(ids_b, attention_mask=mask).data[:, :3]
        np.testing.assert_allclose(out_a, out_b, atol=1e-5)

    def test_visibility_matrix_blocks_cross_influence(self):
        """Changing tokens invisible to position 0 must not change its output."""
        encoder = TransformerEncoder(tiny_config(), rng(0))
        encoder.eval()
        visibility = np.zeros((1, 4, 4), dtype=bool)
        visibility[0, 0, 0] = True  # position 0 sees only itself
        visibility[0, 1:, :] = True
        ids_a = np.array([[5, 6, 7, 8]])
        ids_b = np.array([[5, 9, 9, 9]])
        out_a = encoder(ids_a, visibility=visibility).data[0, 0]
        out_b = encoder(ids_b, visibility=visibility).data[0, 0]
        np.testing.assert_allclose(out_a, out_b, atol=1e-5)

    def test_segment_embeddings_change_output(self):
        encoder = TransformerEncoder(tiny_config(num_segments=3), rng(0))
        encoder.eval()
        ids = np.array([[5, 6, 7]])
        seg_a = np.zeros((1, 3), dtype=np.int64)
        seg_b = np.array([[0, 1, 2]])
        out_a = encoder(ids, segment_ids=seg_a).data
        out_b = encoder(ids, segment_ids=seg_b).data
        assert not np.allclose(out_a, out_b)

    def test_position_embeddings_break_permutation_symmetry(self):
        encoder = TransformerEncoder(tiny_config(), rng(0))
        encoder.eval()
        out_a = encoder(np.array([[5, 6]])).data[0, 0]
        out_b = encoder(np.array([[6, 5]])).data[0, 1]
        assert not np.allclose(out_a, out_b, atol=1e-4)

    def test_attention_maps_collected(self):
        encoder = TransformerEncoder(tiny_config(num_layers=3), rng(0))
        encoder(np.zeros((1, 4), dtype=np.int64))
        maps = encoder.attention_maps()
        assert len(maps) == 3
        assert maps[0].shape == (1, 2, 4, 4)

    def test_gradients_flow_to_all_parameters(self):
        encoder = TransformerEncoder(tiny_config(num_layers=1), rng(0))
        out = encoder(np.array([[1, 2, 3]]))
        out.sum().backward()
        for name, param in encoder.named_parameters():
            if name.startswith("segment"):
                continue  # default segment 0 is used; others legitimately zero
            assert param.grad is not None, f"no grad for {name}"

    def test_block_residual_structure(self):
        config = tiny_config(num_layers=1)
        block = TransformerBlock(config, rng(0))
        block.eval()
        x = Tensor(rng(1).standard_normal((1, 3, 16)).astype(np.float32))
        out = block(x)
        assert out.shape == x.shape
        assert np.isfinite(out.data).all()
